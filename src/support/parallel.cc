#include "parallel.hh"

#include <atomic>
#include <exception>

#include "logging.hh"

namespace primepar {

namespace {

/** Set while a thread is executing a pool task: nested parallelFor()
 *  calls must run inline rather than wait on the (possibly already
 *  saturated) pool. */
thread_local bool insidePoolTask = false;

} // namespace

int
hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
resolveNumThreads(int requested)
{
    if (requested <= 0)
        return hardwareConcurrency();
    return requested;
}

ThreadPool::ThreadPool(int num_threads)
    : nThreads(resolveNumThreads(num_threads))
{
    workers.reserve(nThreads - 1);
    for (int w = 0; w + 1 < nThreads; ++w)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    workCv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::workerLoop()
{
    insidePoolTask = true;
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            workCv.wait(lock,
                        [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    const std::size_t chunks =
        insidePoolTask
            ? 1
            : std::min<std::size_t>(static_cast<std::size_t>(nThreads),
                                    n);
    if (chunks <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    struct JobState
    {
        std::atomic<std::size_t> pending{0};
        std::mutex doneMu;
        std::condition_variable doneCv;
        std::mutex errMu;
        std::exception_ptr error;
    } state;
    state.pending.store(chunks - 1, std::memory_order_relaxed);

    auto run_chunk = [&fn, &state, n, chunks](std::size_t c) {
        const std::size_t begin = c * n / chunks;
        const std::size_t end = (c + 1) * n / chunks;
        try {
            for (std::size_t i = begin; i < end; ++i)
                fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(state.errMu);
            if (!state.error)
                state.error = std::current_exception();
        }
    };

    {
        std::lock_guard<std::mutex> lock(mu);
        PRIMEPAR_ASSERT(!stopping, "parallelFor on stopped pool");
        for (std::size_t c = 1; c < chunks; ++c) {
            queue.emplace_back([&run_chunk, &state, c] {
                run_chunk(c);
                if (state.pending.fetch_sub(
                        1, std::memory_order_acq_rel) == 1) {
                    std::lock_guard<std::mutex> done(state.doneMu);
                    state.doneCv.notify_one();
                }
            });
        }
    }
    workCv.notify_all();

    // The caller is worker 0.
    const bool was_inside = insidePoolTask;
    insidePoolTask = true;
    run_chunk(0);
    insidePoolTask = was_inside;

    {
        std::unique_lock<std::mutex> done(state.doneMu);
        state.doneCv.wait(done, [&state] {
            return state.pending.load(std::memory_order_acquire) == 0;
        });
    }
    if (state.error)
        std::rethrow_exception(state.error);
}

void
parallelFor(ThreadPool *pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (pool) {
        pool->parallelFor(n, fn);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        fn(i);
}

SerialWorker::~SerialWorker()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    if (worker.joinable())
        worker.join();
}

void
SerialWorker::post(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lock(mu);
    PRIMEPAR_ASSERT(!busy && !task,
                    "SerialWorker::post while a task is in flight");
    if (!worker.joinable())
        worker = std::thread([this] { loop(); });
    task = std::move(fn);
    busy = true;
    cv.notify_all();
}

void
SerialWorker::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !busy; });
    if (error) {
        std::exception_ptr err = error;
        error = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
SerialWorker::loop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cv.wait(lock, [&] { return stopping || task; });
        if (!task && stopping)
            return;
        std::function<void()> fn = std::move(task);
        task = nullptr;
        lock.unlock();
        std::exception_ptr err;
        try {
            fn();
        } catch (...) {
            err = std::current_exception();
        }
        lock.lock();
        error = err;
        busy = false;
        cv.notify_all();
    }
}

} // namespace primepar
