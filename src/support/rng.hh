/**
 * @file
 * A small deterministic random number generator.
 *
 * Tests and the functional executor need reproducible pseudo-random
 * tensors; this wraps a fixed-algorithm engine so results do not depend
 * on the standard library implementation.
 */

#ifndef PRIMEPAR_SUPPORT_RNG_HH
#define PRIMEPAR_SUPPORT_RNG_HH

#include <cstdint>

namespace primepar {

/** xorshift64* generator with a uniform-float helper. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo = -1.0f, float hi = 1.0f)
    {
        const double u =
            static_cast<double>(next() >> 11) / 9007199254740992.0;
        return lo + static_cast<float>(u) * (hi - lo);
    }

    /** Uniform integer in [0, n). */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

  private:
    std::uint64_t state;
};

} // namespace primepar

#endif // PRIMEPAR_SUPPORT_RNG_HH
