/**
 * @file
 * Deterministic parallel-execution support for the planner.
 *
 * The optimizer's hot loops (catalog construction, edge-table
 * evaluation, Bellman rows) are data parallel with one output slot per
 * index, so they can run on any number of threads without changing the
 * result. ThreadPool::parallelFor() makes that contract explicit: it
 * statically chunks [0, n) into contiguous ranges, every index writes
 * only its own outputs, and no cross-thread reductions are performed —
 * results (including argmin tie-breaking, which stays inside a single
 * index's serial loop) are bit-identical at any thread count.
 *
 * Nested parallelFor() calls from inside a worker run inline on that
 * worker (no deadlock, no oversubscription), so callees can
 * parallelize unconditionally and inherit whatever level of the loop
 * nest got the threads.
 */

#ifndef PRIMEPAR_SUPPORT_PARALLEL_HH
#define PRIMEPAR_SUPPORT_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace primepar {

/** std::thread::hardware_concurrency(), clamped to >= 1. */
int hardwareConcurrency();

/** Resolve a user thread count: 0 means hardware concurrency;
 *  anything else is clamped to >= 1. */
int resolveNumThreads(int requested);

/**
 * A small fixed-size pool of worker threads driving parallelFor().
 *
 * The calling thread participates as one of the workers, so a pool of
 * size N spawns N - 1 background threads and a pool of size 1 spawns
 * none (parallelFor degenerates to a plain serial loop).
 */
class ThreadPool
{
  public:
    /** @param num_threads total workers incl. the caller (0 = all
     *         hardware threads). */
    explicit ThreadPool(int num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total worker count including the calling thread. */
    int numThreads() const { return nThreads; }

    /**
     * Run fn(i) for every i in [0, n), statically chunked over the
     * workers; blocks until all indices completed. The first exception
     * thrown by any fn is rethrown on the caller. Calls from inside a
     * pool task execute serially inline.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    int nThreads;
    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable workCv;
    std::deque<std::function<void()>> queue;
    bool stopping = false;
};

/** parallelFor through an optional pool; nullptr runs serially. */
void parallelFor(ThreadPool *pool, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/**
 * A lazily started background thread running one posted task at a
 * time. SpmdOpExecutor uses one as its communication worker: the ring
 * transfers of a temporal step are posted here while the blocked
 * GEMMs compute on the caller (and its ThreadPool), and wait() joins
 * the two sides at the step barrier. The thread is only created on
 * the first post(), so executors that never overlap pay nothing.
 *
 * An exception escaping the task is captured and rethrown from
 * wait() — that is how a TransientFaultError raised by a posted-ahead
 * transfer reaches the executor's journal at the join point.
 */
class SerialWorker
{
  public:
    SerialWorker() = default;
    ~SerialWorker();

    SerialWorker(const SerialWorker &) = delete;
    SerialWorker &operator=(const SerialWorker &) = delete;

    /** Run @p fn on the worker thread. The worker must be idle:
     *  every post() must be paired with a wait() before the next. */
    void post(std::function<void()> fn);

    /** Block until the posted task (if any) finished; rethrows the
     *  exception it exited with, if any. Idempotent. */
    void wait();

  private:
    void loop();

    std::thread worker;
    std::mutex mu;
    std::condition_variable cv;
    std::function<void()> task;
    bool busy = false;
    bool stopping = false;
    std::exception_ptr error;
};

} // namespace primepar

#endif // PRIMEPAR_SUPPORT_PARALLEL_HH
