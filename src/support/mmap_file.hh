/**
 * @file
 * Read-only memory-mapped files and atomic whole-file writes.
 *
 * The serving layer keeps its plan/catalog store as one immutable
 * file: writers produce a complete new image and publish it with
 * tmp-write + fsync + rename (readers and a kill -9 mid-write always
 * see either the old or the new version, never a torn one), and
 * readers map the published file read-only so any number of threads
 * serve lookups from the same physical pages with no per-request
 * allocation or copying — the same serve-from-immutable-mmap idiom
 * query engines like PISA use for heavy traffic.
 */

#ifndef PRIMEPAR_SUPPORT_MMAP_FILE_HH
#define PRIMEPAR_SUPPORT_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace primepar {

/** A read-only mmap of one file (move-only; unmapped on destroy). */
class MmapFile
{
  public:
    MmapFile() = default;
    ~MmapFile() { reset(); }

    MmapFile(MmapFile &&other) noexcept
        : base(other.base), bytes(other.bytes), ok(other.ok)
    {
        other.base = nullptr;
        other.bytes = 0;
        other.ok = false;
    }
    MmapFile &
    operator=(MmapFile &&other) noexcept
    {
        if (this != &other) {
            reset();
            base = other.base;
            bytes = other.bytes;
            ok = other.ok;
            other.base = nullptr;
            other.bytes = 0;
            other.ok = false;
        }
        return *this;
    }
    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /**
     * Map @p path read-only. On failure (missing file, I/O error)
     * returns an invalid MmapFile and, when @p error is non-null,
     * stores a diagnostic. An empty file maps as valid with size 0.
     */
    static MmapFile openReadOnly(const std::string &path,
                                 std::string *error = nullptr);

    bool valid() const { return ok; }
    const std::uint8_t *
    data() const
    {
        return static_cast<const std::uint8_t *>(base);
    }
    std::size_t size() const { return bytes; }

  private:
    void reset();

    void *base = nullptr;
    std::size_t bytes = 0;
    bool ok = false;
};

/**
 * Atomically replace @p path with @p bytes: write to a sibling temp
 * file, fsync it, rename over @p path, fsync the directory. Any
 * crash — including kill -9 at an arbitrary instruction — leaves
 * either the previous complete file or the new complete file at
 * @p path. Returns false (with a diagnostic in @p error) on failure;
 * the temp file is removed on every failure path.
 */
bool atomicWriteFile(const std::string &path, const void *data,
                     std::size_t size, std::string *error = nullptr);

} // namespace primepar

#endif // PRIMEPAR_SUPPORT_MMAP_FILE_HH
