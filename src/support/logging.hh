/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 discipline: panic() for internal invariant violations
 * (bugs in PrimePar itself), fatal() for unrecoverable user errors (bad
 * configuration), warn()/inform() for non-fatal status messages.
 */

#ifndef PRIMEPAR_SUPPORT_LOGGING_HH
#define PRIMEPAR_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace primepar {

namespace detail {

/** Format a variadic argument pack into a single string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort due to an internal invariant violation (a PrimePar bug). */
#define PRIMEPAR_PANIC(...)                                                 \
    ::primepar::detail::panicImpl(                                          \
        __FILE__, __LINE__, ::primepar::detail::formatMessage(__VA_ARGS__))

/** Exit due to an unrecoverable user/configuration error. */
#define PRIMEPAR_FATAL(...)                                                 \
    ::primepar::detail::fatalImpl(                                          \
        __FILE__, __LINE__, ::primepar::detail::formatMessage(__VA_ARGS__))

/** Warn about suspicious but non-fatal conditions. */
#define PRIMEPAR_WARN(...)                                                  \
    ::primepar::detail::warnImpl(                                           \
        ::primepar::detail::formatMessage(__VA_ARGS__))

/** Informative status message. */
#define PRIMEPAR_INFORM(...)                                                \
    ::primepar::detail::informImpl(                                         \
        ::primepar::detail::formatMessage(__VA_ARGS__))

/** Panic unless a condition holds. */
#define PRIMEPAR_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            PRIMEPAR_PANIC("assertion failed: " #cond " ",                  \
                           ::primepar::detail::formatMessage(__VA_ARGS__)); \
        }                                                                   \
    } while (0)

} // namespace primepar

#endif // PRIMEPAR_SUPPORT_LOGGING_HH
