/**
 * @file
 * Minimal JSON reading and writing.
 *
 * The observability layer exchanges small structured documents —
 * calibrated latency models, metrics snapshots, bench reports — as
 * JSON. This module provides just enough of the format for those
 * schemas: a value tree with ordered object keys, a strict
 * recursive-descent parser, and a writer that round-trips doubles
 * exactly (shortest round-trip form via std::to_chars — both
 * directions are locale-independent by construction). No external
 * dependency.
 */

#ifndef PRIMEPAR_SUPPORT_JSON_HH
#define PRIMEPAR_SUPPORT_JSON_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace primepar {

/** Malformed JSON text or a type-mismatched access. */
class JsonError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * One JSON value. Objects keep insertion order (so written documents
 * are stable and diffable); lookups are linear, which is fine for the
 * small schemas this repo exchanges.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::Bool), boolVal(b) {}
    JsonValue(double n) : kind_(Kind::Number), numVal(n) {}
    JsonValue(std::int64_t n)
        : kind_(Kind::Number), numVal(static_cast<double>(n))
    {}
    JsonValue(int n) : kind_(Kind::Number), numVal(n) {}
    JsonValue(std::string s) : kind_(Kind::String), strVal(std::move(s))
    {}
    JsonValue(const char *s) : kind_(Kind::String), strVal(s) {}

    static JsonValue array() { return JsonValue(Kind::Array); }
    static JsonValue object() { return JsonValue(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array access. */
    const std::vector<JsonValue> &items() const;
    void push(JsonValue v);

    /** Object access. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;
    /** Set (append or overwrite) an object member. */
    void set(const std::string &key, JsonValue v);
    /** Member lookup; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;
    /** Member lookup; throws JsonError when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Serialize; @p indent > 0 pretty-prints. */
    std::string toString(int indent = 2) const;

  private:
    explicit JsonValue(Kind k) : kind_(k) {}
    void write(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool boolVal = false;
    double numVal = 0.0;
    std::string strVal;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;
};

/** Parse @p text (one JSON document); throws JsonError on any
 *  malformation, including trailing garbage. */
JsonValue parseJson(const std::string &text);

/** Read and parse a JSON file; throws JsonError (also on I/O). */
JsonValue loadJsonFile(const std::string &path);

/** Serialize @p v to @p path; throws JsonError on I/O failure. */
void saveJsonFile(const std::string &path, const JsonValue &v);

} // namespace primepar

#endif // PRIMEPAR_SUPPORT_JSON_HH
