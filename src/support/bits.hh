/**
 * @file
 * Small bit-manipulation helpers used throughout PrimePar.
 *
 * Device counts in PrimePar are powers of two and device ids are bit
 * vectors (d_1, ..., d_n); these helpers convert between linear indices
 * and bit representations.
 */

#ifndef PRIMEPAR_SUPPORT_BITS_HH
#define PRIMEPAR_SUPPORT_BITS_HH

#include <cstdint>

#include "logging.hh"

namespace primepar {

/** @return true iff @p x is a (positive) power of two. */
constexpr bool
isPowerOfTwo(std::int64_t x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

/** Integer log2 of a power of two; panics on non powers of two. */
inline int
log2Exact(std::int64_t x)
{
    PRIMEPAR_ASSERT(isPowerOfTwo(x), "log2Exact of non power of two ", x);
    int n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** Floor of log2 for positive inputs. */
inline int
log2Floor(std::int64_t x)
{
    PRIMEPAR_ASSERT(x > 0, "log2Floor of non-positive ", x);
    int n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** Non-negative modulus: result in [0, m) even for negative @p x. */
constexpr std::int64_t
positiveMod(std::int64_t x, std::int64_t m)
{
    std::int64_t r = x % m;
    return r < 0 ? r + m : r;
}

/** Ceiling division for non-negative integers. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace primepar

#endif // PRIMEPAR_SUPPORT_BITS_HH
