#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace primepar {

void
TextTable::header(std::vector<std::string> cells)
{
    headerRow = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &r) {
        if (widths.size() < r.size())
            widths.resize(r.size(), 0);
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    grow(headerRow);
    for (const auto &r : rows)
        grow(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            os << r[i];
            if (i + 1 < r.size())
                os << std::string(widths[i] - r[i].size() + 2, ' ');
        }
        os << '\n';
    };
    if (!headerRow.empty()) {
        emit(headerRow);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return std::string(buf);
}

} // namespace primepar
