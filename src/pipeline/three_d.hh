/**
 * @file
 * 3D parallelism composition (paper Sec. 6.4).
 *
 * A (p, d, m) configuration splits the cluster into p pipeline stages
 * of d x m devices each; within a stage, d-way data parallelism wraps
 * m-way tensor parallelism. The tensor-parallel strategy of the stage
 * block comes either from Megatron's hand rules or from PrimePar's
 * search restricted to non-batch dimensions (the paper controls d by
 * disabling batch partitioning in PrimePar).
 *
 * The pipeline schedule is 1F1B: with M micro-batches per iteration,
 * iteration time is (M + p - 1) stage rounds plus inter-stage
 * activation point-to-point and the data-parallel gradient
 * all-reduce.
 */

#ifndef PRIMEPAR_PIPELINE_THREE_D_HH
#define PRIMEPAR_PIPELINE_THREE_D_HH

#include <string>
#include <vector>

#include "baselines/megatron.hh"
#include "graph/transformer.hh"
#include "sim/model_sim.hh"

namespace primepar {

/** One (pipeline, data, model) parallelism configuration. */
struct ThreeDConfig
{
    int p = 1;
    int d = 1;
    int m = 1;

    int devices() const { return p * d * m; }
    std::string toString() const;
};

/** All configurations with p > 1 covering @p num_devices (Fig. 10). */
std::vector<ThreeDConfig> threeDConfigs(int num_devices);

/** Evaluation output of one configuration. */
struct ThreeDResult
{
    ThreeDConfig config;
    double iterationUs = 0.0;
    /** Tokens processed per second across the whole cluster; 0 when
     *  the configuration does not fit in device memory. */
    double throughput = 0.0;
    double bubbleUs = 0.0;
    double gradAllReduceUs = 0.0;
    double stageP2pUs = 0.0;
    /** Per-device peak memory (in-flight pipeline stashes included). */
    double peakMemoryBytes = 0.0;
    /** False when peak memory exceeds device capacity. */
    bool feasible = true;
    /** True when activation checkpointing (recompute in backward) was
     *  required to fit; its recompute cost is included in
     *  iterationUs. */
    bool activationCheckpointing = false;
};

/** Evaluator for a fixed model and global batch. */
class ThreeDEvaluator
{
  public:
    /**
     * @param cfg model shape
     * @param global_batch sequences per iteration across the cluster
     * @param micro_batch micro-batch size per pipeline slot
     */
    ThreeDEvaluator(const ModelConfig &cfg, std::int64_t global_batch,
                    std::int64_t micro_batch);

    /**
     * Evaluate a configuration with the given per-stage tensor
     * parallel strategies over m devices (strategies must consume
     * log2(m) bits; the d-way data parallelism and p-way pipeline are
     * handled by this evaluator).
     */
    ThreeDResult evaluate(const ThreeDConfig &config,
                          const CompGraph &block,
                          const std::vector<PartitionSeq> &strategies)
        const;

    /** Stage block graph for a given micro-batch (helper). */
    CompGraph stageBlock() const { return buildTransformerBlock(model, microBatch); }

    const ModelConfig &modelConfig() const { return model; }
    std::int64_t microBatchSize() const { return microBatch; }

  private:
    ModelConfig model;
    std::int64_t globalBatch;
    std::int64_t microBatch;
};

} // namespace primepar

#endif // PRIMEPAR_PIPELINE_THREE_D_HH
