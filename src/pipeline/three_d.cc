#include "three_d.hh"

#include <sstream>

#include "support/bits.hh"
#include "support/logging.hh"

namespace primepar {

std::string
ThreeDConfig::toString() const
{
    std::ostringstream os;
    os << '(' << p << ',' << d << ',' << m << ')';
    return os.str();
}

std::vector<ThreeDConfig>
threeDConfigs(int num_devices)
{
    std::vector<ThreeDConfig> configs;
    for (int p = 2; p <= num_devices; p *= 2) {
        for (int d = 1; d * p <= num_devices; d *= 2) {
            const int m = num_devices / (p * d);
            configs.push_back({p, d, m});
        }
    }
    return configs;
}

ThreeDEvaluator::ThreeDEvaluator(const ModelConfig &cfg,
                                 std::int64_t global_batch,
                                 std::int64_t micro_batch)
    : model(cfg), globalBatch(global_batch), microBatch(micro_batch)
{
    PRIMEPAR_ASSERT(global_batch % micro_batch == 0,
                    "global batch must be a multiple of the micro batch");
}

ThreeDResult
ThreeDEvaluator::evaluate(const ThreeDConfig &config,
                          const CompGraph &block,
                          const std::vector<PartitionSeq> &strategies)
    const
{
    ThreeDResult result;
    result.config = config;

    // Per-stage tensor-parallel cluster (model parallelism occupies
    // the innermost device-id bits, i.e. consecutive devices).
    const ClusterTopology stage_topo =
        ClusterTopology::paperCluster(config.m);
    const ModelSimulator sim(stage_topo, block, strategies);

    const int layers_per_stage =
        static_cast<int>(ceilDiv(model.numLayers, config.p));
    const ModelSimResult stage = sim.simulate(layers_per_stage);
    double t_fwd = stage.forwardUs;
    double t_bwd = stage.latencyUs - stage.forwardUs;

    // Micro-batches per data-parallel replica per iteration.
    const std::int64_t micro_batches = std::max<std::int64_t>(
        1, globalBatch / (config.d * microBatch));

    // Memory plan: full stash first; fall back to activation
    // checkpointing (stash only layer-boundary activations, recompute
    // the forward pass during backward) as Megatron does for large
    // models.
    const double in_flight = static_cast<double>(
        std::min<std::int64_t>(config.p, micro_batches));
    const double capacity =
        static_cast<double>(stage_topo.deviceSpec().memory_bytes);
    double peak =
        stage.peakMemoryBytes + (in_flight - 1.0) * stage.stashBytes;
    if (peak > capacity) {
        const double boundary_stash =
            static_cast<double>(microBatch) * model.seqLength *
            model.hiddenSize * 2.0 / config.m * layers_per_stage;
        peak = stage.peakMemoryBytes - stage.stashBytes +
               in_flight * boundary_stash;
        result.activationCheckpointing = true;
        t_bwd += t_fwd; // recompute
    }
    result.peakMemoryBytes = peak;
    result.feasible = peak <= capacity;

    // 1F1B schedule: steady rounds plus pipeline fill/drain bubble.
    const double round = t_fwd + t_bwd;
    const double steady = static_cast<double>(micro_batches) * round;
    result.bubbleUs = static_cast<double>(config.p - 1) * round;

    // Inter-stage activation hop (activations sharded m ways).
    const ClusterTopology full_topo =
        ClusterTopology::paperCluster(config.devices());
    double hop = 0.0;
    if (config.p > 1) {
        const double act_bytes =
            static_cast<double>(microBatch) * model.seqLength *
            model.hiddenSize * 2.0 / config.m;
        const std::int64_t peer =
            std::min<std::int64_t>(config.d * config.m,
                                   full_topo.numDevices() - 1);
        hop = transferWireTime(full_topo, 0, peer, act_bytes);
        result.stageP2pUs =
            2.0 * static_cast<double>(config.p - 1) * hop;
    }

    // Data-parallel gradient all-reduce of this stage's parameters.
    if (config.d > 1) {
        const double grad_bytes = model.layerParams() *
                                  layers_per_stage * 2.0 / config.m;
        DeviceGroup group;
        for (int i = 0; i < config.d; ++i)
            group.push_back(static_cast<std::int64_t>(i) * config.m);
        result.gradAllReduceUs =
            ringAllReduceDuration(full_topo, group, grad_bytes);
    }

    result.iterationUs = steady + result.bubbleUs + result.stageP2pUs +
                         result.gradAllReduceUs;
    result.throughput =
        result.feasible
            ? static_cast<double>(globalBatch) * model.seqLength /
                  (result.iterationUs * 1e-6)
            : 0.0;
    return result;
}

} // namespace primepar
