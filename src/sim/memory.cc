#include "memory.hh"

#include <set>

namespace primepar {

OpMemory
opMemory(const OpSpec &op, const PartitionSeq &seq, const DsiTable &dsi,
         const MemoryModelParams &params)
{
    std::vector<PassComm> comms;
    if (params.doubleBuffers && seq.hasPSquare()) {
        for (std::size_t p = 0; p < op.passes.size(); ++p)
            comms.push_back(
                derivePassComm(op, seq, dsi, static_cast<int>(p)));
    }
    return opMemory(op, seq, dsi, comms, params);
}

OpMemory
opMemory(const OpSpec &op, const PartitionSeq &seq, const DsiTable &dsi,
         const std::vector<PassComm> &pass_comms,
         const MemoryModelParams &params)
{
    OpMemory mem;

    auto slice_bytes = [&](int tensor) {
        return static_cast<double>(dsi.tensorSliceNumel(op, tensor)) *
               op.bytesPerElement;
    };

    for (std::size_t t = 0; t < op.tensors.size(); ++t) {
        if (op.tensors[t].isParameter) {
            mem.paramBytes +=
                slice_bytes(static_cast<int>(t)) * params.paramStateFactor;
        }
    }

    for (const TensorRef &ref : op.stashed)
        mem.stashBytes += slice_bytes(ref.tensor);

    for (const PassSpec &pass : op.passes) {
        double working = slice_bytes(pass.output.tensor);
        for (const TensorRef &ref : pass.operands) {
            // Parameters and stashes are already counted as resident.
            if (op.tensors[ref.tensor].isParameter && !ref.grad)
                continue;
            working += slice_bytes(ref.tensor);
        }
        mem.workingBytes = std::max(mem.workingBytes, working);
    }

    if (params.doubleBuffers && seq.hasPSquare()) {
        // One extra buffer per distinct tensor moved by ring shifts.
        std::set<int> shifted;
        for (const PassComm &comm : pass_comms) {
            for (const auto &step : comm.stepShifts)
                for (const ShiftSet &set : step)
                    shifted.insert(set.tensor.tensor);
            for (const auto &step : comm.accShifts)
                for (const ShiftSet &set : step)
                    shifted.insert(set.tensor.tensor);
        }
        for (int t : shifted)
            mem.doubleBufferBytes += slice_bytes(t);
    }
    return mem;
}

double
opIdealMemoryBytes(const OpSpec &op, std::int64_t num_devices,
                   const MemoryModelParams &params)
{
    double total = 0.0;
    for (std::size_t t = 0; t < op.tensors.size(); ++t) {
        if (op.tensors[t].isParameter) {
            total += op.tensorBytes(static_cast<int>(t)) *
                     params.paramStateFactor;
        }
    }
    for (const TensorRef &ref : op.stashed)
        total += op.tensorBytes(ref.tensor);
    return total / static_cast<double>(num_devices);
}

} // namespace primepar
