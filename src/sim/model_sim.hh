/**
 * @file
 * Whole-model training-step simulation.
 *
 * Walks the computation graph: forward in topological order with
 * inter-operator redistribution on every edge, then backward and
 * gradient phases in reverse order with the mirrored redistributions.
 * Produces the measured quantities the paper's figures report:
 * iteration latency and its breakdown (compute / collective / ring /
 * redistribution) plus per-device peak memory.
 */

#ifndef PRIMEPAR_SIM_MODEL_SIM_HH
#define PRIMEPAR_SIM_MODEL_SIM_HH

#include <vector>

#include "graph/graph.hh"
#include "memory.hh"
#include "op_sim.hh"

namespace primepar {

/** Result of simulating one training iteration of a (sub)model. */
struct ModelSimResult
{
    double latencyUs = 0.0;
    /** Makespan of the forward sweep alone (pipeline stage fwd time). */
    double forwardUs = 0.0;
    double computeUs = 0.0;
    double ringUs = 0.0;
    double allReduceUs = 0.0;
    double redistUs = 0.0;
    double stallUs = 0.0;
    double peakMemoryBytes = 0.0;
    /** Parameter-state part of peakMemoryBytes (all layers). */
    double paramBytes = 0.0;
    /** Stashed-activation part of peakMemoryBytes (all layers, one
     *  in-flight micro-batch). */
    double stashBytes = 0.0;
};

/**
 * The ideal (replication-free) per-device memory of one layer of
 * @p graph: total parameter state and stashed activations divided
 * evenly over the devices — the baseline of the paper's Fig. 2b.
 * Uses the same shared-stash dedup rule as the simulator's accounting.
 */
double modelIdealMemoryBytes(const CompGraph &graph,
                             std::int64_t num_devices,
                             const MemoryModelParams &params = {});

/** Simulator for a fixed (graph, strategy assignment) pair. */
class ModelSimulator
{
  public:
    /**
     * @param topo cluster
     * @param graph computation graph
     * @param strategies one partition sequence per node
     */
    ModelSimulator(const ClusterTopology &topo, const CompGraph &graph,
                   std::vector<PartitionSeq> strategies);

    /**
     * Simulate one training iteration (all three phases of every
     * node, with redistribution).
     *
     * @param num_layers results are scaled to this many identical
     *        stacked layers (latency scales linearly; memory sums
     *        parameters/stash across layers)
     * @param trace optional span recorder (records one layer)
     */
    ModelSimResult simulate(int num_layers = 1,
                            Trace *trace = nullptr) const;

    /** Per-node plan access (for inspection/benches). */
    const OpPlan &plan(int node) const { return plans[node]; }

  private:
    double simulateEdgeRedistribution(SimContext &ctx,
                                      const GraphEdge &edge,
                                      bool forward) const;

    const ClusterTopology &topo;
    const CompGraph &graph;
    std::vector<PartitionSeq> strategies;
    std::vector<OpPlan> plans;
};

} // namespace primepar

#endif // PRIMEPAR_SIM_MODEL_SIM_HH
