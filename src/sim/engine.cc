#include "engine.hh"

#include "support/logging.hh"

namespace primepar {

double
computeDuration(const DeviceSpec &spec, double flops, double bytes)
{
    return spec.kernel_overhead_us + flops / spec.flops_per_us +
           bytes / spec.mem_bytes_per_us;
}

double
transferWireTime(const ClusterTopology &topo, std::int64_t src,
                 std::int64_t dst, double bytes)
{
    if (src == dst)
        return 0.0;
    return topo.linkLatency(src, dst) +
           bytes / topo.linkBandwidth(src, dst);
}

double
ringAllReduceDuration(const ClusterTopology &topo,
                      const DeviceGroup &group, double bytes)
{
    const std::size_t g = group.size();
    if (g < 2)
        return 0.0;
    const double chunk = bytes / static_cast<double>(g);
    const double bw = ringBottleneckBandwidth(topo, group);
    const double lat = ringWorstLatency(topo, group);
    return 2.0 * static_cast<double>(g - 1) * (lat + chunk / bw);
}

double
reduceScatterDuration(const ClusterTopology &topo, const DeviceGroup &group,
                      double bytes)
{
    const std::size_t g = group.size();
    if (g < 2)
        return 0.0;
    const double chunk = bytes / static_cast<double>(g);
    const double bw = ringBottleneckBandwidth(topo, group);
    const double lat = ringWorstLatency(topo, group);
    return static_cast<double>(g - 1) * (lat + chunk / bw);
}

double
FaultSimModel::expectedTransferUs(double wire) const
{
    const double retry_prob =
        std::min(0.999, std::max(0.0, dropProb + corruptProb));
    // Geometric number of attempts: E[attempts] = 1 / (1 - p).
    const double attempts = 1.0 / (1.0 - retry_prob);
    const double straggle =
        std::max(0.0, stragglerProb) *
        std::max(0.0, stragglerFactor - 1.0) * wire;
    return attempts * wire + (attempts - 1.0) * retryBackoffUs +
           straggle;
}

SimContext::SimContext(const ClusterTopology &topo_in)
    : topo(topo_in), computeEngine(topo.numDevices()),
      sendPort(topo.numDevices()), recvPort(topo.numDevices()),
      ready(topo.numDevices(), 0.0)
{}

double
SimContext::transfer(std::int64_t src, std::int64_t dst, double bytes,
                     double ready_time)
{
    if (src == dst)
        return ready_time;
    double wire = transferWireTime(topo, src, dst, bytes);
    if (faults)
        wire = faults->expectedTransferUs(wire);
    const double start = std::max(
        {ready_time, sendPort[src].freeAt(), recvPort[dst].freeAt()});
    sendPort[src].occupy(start, wire);
    return recvPort[dst].occupy(start, wire);
}

void
SimContext::reset()
{
    for (auto &r : computeEngine)
        r.reset();
    for (auto &r : sendPort)
        r.reset();
    for (auto &r : recvPort)
        r.reset();
    std::fill(ready.begin(), ready.end(), 0.0);
}

double
SimContext::makespan() const
{
    double m = 0.0;
    for (double r : ready)
        m = std::max(m, r);
    return m;
}

} // namespace primepar
