#include "op_sim.hh"

#include "support/logging.hh"

namespace primepar {

OpPlan::OpPlan(const OpSpec &op_in, const PartitionSeq &seq_in,
               int num_bits)
    : op(&op_in), seq(seq_in), dsi(op_in, seq_in, num_bits)
{
    for (std::size_t p = 0; p < op_in.passes.size(); ++p)
        passComms.push_back(
            derivePassComm(op_in, seq_in, dsi, static_cast<int>(p)));
}

namespace {

/** Per-device, per-step flops of one sub-operator of a pass. */
double
subOperatorFlops(const OpSpec &op, const DsiTable &dsi,
                 const PassSpec &pass)
{
    return op.passFlops(pass) /
           (static_cast<double>(dsi.numDevices()) * dsi.steps());
}

/** Memory traffic of one sub-operator (operand + output slices). */
double
subOperatorBytes(const OpSpec &op, const DsiTable &dsi,
                 const PassSpec &pass)
{
    double bytes = 0.0;
    for (const TensorRef &ref : pass.operands)
        bytes += static_cast<double>(
                     dsi.tensorSliceNumel(op, ref.tensor)) *
                 op.bytesPerElement;
    bytes += static_cast<double>(
                 dsi.tensorSliceNumel(op, pass.output.tensor)) *
             op.bytesPerElement;
    return bytes;
}

SimBreakdown
simulatePass(SimContext &ctx, const OpPlan &plan, int pass_index)
{
    const OpSpec &op = *plan.op;
    const DsiTable &dsi = plan.dsi;
    const PassSpec &pass = op.passes[pass_index];
    const PassComm &comm = plan.passComms[pass_index];
    const std::int64_t devices = dsi.numDevices();
    const int steps = dsi.steps();

    const double flops = subOperatorFlops(op, dsi, pass);
    const double mem_bytes = subOperatorBytes(op, dsi, pass);
    const double kernel =
        computeDuration(ctx.topo.deviceSpec(), flops, mem_bytes);

    SimBreakdown stats;
    const double phase_start_max = ctx.makespan();

    // Per-device tracking of data availability.
    std::vector<double> operand_ready = ctx.ready; // step-t operands
    std::vector<double> acc_ready(devices, 0.0);   // migrated partials
    std::vector<double> compute_end(devices, 0.0);
    std::vector<double> step_done = ctx.ready;

    std::vector<double> device_compute(devices, 0.0);
    std::vector<double> device_ring(devices, 0.0);
    std::vector<double> device_stall(devices, 0.0);

    std::vector<double> next_operand_ready(devices);

    for (int t = 0; t < steps; ++t) {
        // Compute kernels of step t.
        for (std::int64_t dev = 0; dev < devices; ++dev) {
            const double dep =
                std::max({operand_ready[dev], acc_ready[dev],
                          t == 0 ? ctx.ready[dev] : 0.0});
            const double engine_free =
                ctx.computeEngine[dev].freeAt();
            const double start = std::max(dep, engine_free);
            device_stall[dev] += std::max(0.0, dep - engine_free);
            compute_end[dev] =
                ctx.computeEngine[dev].occupy(start, kernel);
            device_compute[dev] += kernel;
            step_done[dev] = std::max(compute_end[dev], acc_ready[dev]);
            if (ctx.trace) {
                ctx.trace->add(dev, SpanKind::Compute,
                               op.name + ":" + phaseName(pass.phase),
                               compute_end[dev] - kernel,
                               compute_end[dev]);
            }
        }

        // Ring shifts issued during step t (deliver operands for t+1,
        // or realign parameters when t is the last step).
        next_operand_ready = operand_ready;
        for (const ShiftSet &set : comm.stepShifts[t]) {
            const double bytes =
                static_cast<double>(set.elementsPerTransfer) *
                op.bytesPerElement;
            for (const Transfer &tr : set.transfers) {
                const double arrive = ctx.transfer(
                    tr.sender, tr.receiver, bytes,
                    operand_ready[tr.sender]);
                next_operand_ready[tr.receiver] =
                    std::max(next_operand_ready[tr.receiver], arrive);
                const double wire = transferWireTime(
                    ctx.topo, tr.sender, tr.receiver, bytes);
                device_ring[tr.receiver] += wire;
                if (ctx.trace) {
                    ctx.trace->add(tr.receiver, SpanKind::Ring,
                                   op.refName(set.tensor) + " shift",
                                   arrive - wire, arrive);
                }
            }
        }

        // Accumulator migrations between t and t+1 depend on the
        // partial result of step t and overlap step t+1.
        std::fill(acc_ready.begin(), acc_ready.end(), 0.0);
        if (t + 1 < steps) {
            for (const ShiftSet &set : comm.accShifts[t]) {
                const double bytes =
                    static_cast<double>(set.elementsPerTransfer) *
                    op.bytesPerElement;
                for (const Transfer &tr : set.transfers) {
                    const double arrive =
                        ctx.transfer(tr.sender, tr.receiver, bytes,
                                     compute_end[tr.sender]);
                    acc_ready[tr.receiver] =
                        std::max(acc_ready[tr.receiver], arrive);
                    const double wire = transferWireTime(
                        ctx.topo, tr.sender, tr.receiver, bytes);
                    device_ring[tr.receiver] += wire;
                    if (ctx.trace) {
                        ctx.trace->add(tr.receiver, SpanKind::Ring,
                                       op.refName(set.tensor) +
                                           " accumulator",
                                       arrive - wire, arrive);
                    }
                }
            }
        }
        operand_ready.swap(next_operand_ready);
    }

    // Phase end: the last step plus any transition shift arrival.
    for (std::int64_t dev = 0; dev < devices; ++dev)
        ctx.ready[dev] = std::max(step_done[dev], operand_ready[dev]);

    // Grouped all-reduce of partial sums (synchronous collective).
    double allreduce = 0.0;
    if (comm.allReduce.has_value()) {
        const AllReduceSpec &spec = *comm.allReduce;
        const double bytes =
            static_cast<double>(spec.elementsPerDevice) *
            op.bytesPerElement;
        for (const DeviceGroup &group : spec.groups) {
            double group_start = 0.0;
            for (std::int64_t member : group)
                group_start = std::max(group_start, ctx.ready[member]);
            const double dur =
                ringAllReduceDuration(ctx.topo, group, bytes);
            allreduce = std::max(allreduce, dur);
            for (std::int64_t member : group) {
                // The collective owns the member's ports for its span.
                ctx.sendPort[member].occupy(group_start, dur);
                ctx.recvPort[member].occupy(group_start, dur);
                ctx.ready[member] = group_start + dur;
                if (ctx.trace && dur > 0.0) {
                    ctx.trace->add(member, SpanKind::AllReduce,
                                   op.refName(spec.tensor) +
                                       " all-reduce",
                                   group_start, group_start + dur);
                }
            }
        }
    }

    for (std::int64_t dev = 0; dev < devices; ++dev) {
        stats.computeUs = std::max(stats.computeUs, device_compute[dev]);
        stats.ringUs = std::max(stats.ringUs, device_ring[dev]);
        stats.stallUs = std::max(stats.stallUs, device_stall[dev]);
    }
    stats.allReduceUs = allreduce;
    stats.spanUs = ctx.makespan() - phase_start_max;
    return stats;
}

} // namespace

SimBreakdown
simulateOpPhase(SimContext &ctx, const OpPlan &plan, Phase phase)
{
    SimBreakdown total;
    for (std::size_t p = 0; p < plan.op->passes.size(); ++p) {
        if (plan.op->passes[p].phase != phase)
            continue;
        total.accumulate(
            simulatePass(ctx, plan, static_cast<int>(p)));
    }
    return total;
}

} // namespace primepar
