/**
 * @file
 * Simulation of one partitioned operator's training phases.
 *
 * Lowers a (operator, partition sequence) pair into per-device compute
 * kernels, ring transfers (double-buffered, overlapping the concurrent
 * compute step), accumulator migrations (overlapping the *next* step,
 * as in the paper's dW redistribution) and grouped all-reduces, then
 * schedules them on a SimContext.
 */

#ifndef PRIMEPAR_SIM_OP_SIM_HH
#define PRIMEPAR_SIM_OP_SIM_HH

#include "engine.hh"
#include "partition/comm_pattern.hh"
#include "partition/dsi.hh"
#include "partition/op_spec.hh"
#include "partition/partition_step.hh"

namespace primepar {

/** Accumulated latencies of one simulated pass/op (microseconds). */
struct SimBreakdown
{
    double computeUs = 0.0;   ///< kernel time (max over devices)
    double ringUs = 0.0;      ///< ring p2p wire time (max over devices)
    double allReduceUs = 0.0; ///< collective time (max over devices)
    double stallUs = 0.0;     ///< compute stalled waiting on transfers
    double spanUs = 0.0;      ///< makespan contribution of this piece

    void
    accumulate(const SimBreakdown &o)
    {
        computeUs += o.computeUs;
        ringUs += o.ringUs;
        allReduceUs += o.allReduceUs;
        stallUs += o.stallUs;
        spanUs += o.spanUs;
    }
};

/** Precomputed per-op simulation artifacts (reusable across runs). */
struct OpPlan
{
    OpPlan(const OpSpec &op, const PartitionSeq &seq, int num_bits);

    const OpSpec *op;
    PartitionSeq seq;
    DsiTable dsi;
    std::vector<PassComm> passComms;
};

/**
 * Simulate all passes of @p plan whose phase equals @p phase, starting
 * from the devices' current clocks in @p ctx; advances the clocks.
 */
SimBreakdown simulateOpPhase(SimContext &ctx, const OpPlan &plan,
                             Phase phase);

} // namespace primepar

#endif // PRIMEPAR_SIM_OP_SIM_HH
