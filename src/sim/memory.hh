/**
 * @file
 * Per-device memory model (paper Sec. 4.1, "Peak Memory Occupancy").
 *
 * The peak per-device memory of a partitioned operator is the resident
 * parameter state (weights, gradients, optimizer moments), the tensors
 * stashed between phases, the working set of the largest pass, and —
 * for spatial-temporal sequences — the double buffers that let ring
 * transfers overlap compute. Replication by conventional partitions is
 * captured automatically because a device's slice of a tensor shrinks
 * only along dimensions the sequence actually cuts.
 */

#ifndef PRIMEPAR_SIM_MEMORY_HH
#define PRIMEPAR_SIM_MEMORY_HH

#include "partition/comm_pattern.hh"
#include "partition/dsi.hh"
#include "partition/op_spec.hh"
#include "partition/partition_step.hh"

namespace primepar {

/** Accounting knobs of the memory model. */
struct MemoryModelParams
{
    /** Bytes of resident state per parameter byte. The default (2.0)
     *  accounts for weight + gradient in fp16; the paper's 175B-scale
     *  runs on 32 GB V100s are only feasible with optimizer state
     *  kept out of this budget (offloaded / sharded), so that is the
     *  apples-to-apples setting for all systems compared here. Set
     *  4.0 to additionally count two Adam moments. */
    double paramStateFactor = 2.0;
    /** Model the double buffers used to overlap ring shifts. */
    bool doubleBuffers = true;
};

/** Breakdown of one operator's per-device memory in bytes. */
struct OpMemory
{
    double paramBytes = 0.0;
    double stashBytes = 0.0;
    double workingBytes = 0.0;
    double doubleBufferBytes = 0.0;

    double
    total() const
    {
        return paramBytes + stashBytes + workingBytes +
               doubleBufferBytes;
    }
};

/** Per-device memory of @p op under the partition described by @p dsi. */
OpMemory opMemory(const OpSpec &op, const PartitionSeq &seq,
                  const DsiTable &dsi,
                  const MemoryModelParams &params = {});

/**
 * Same, reusing already-derived pass communication schedules (avoids
 * re-deriving them for the double-buffer accounting).
 */
OpMemory opMemory(const OpSpec &op, const PartitionSeq &seq,
                  const DsiTable &dsi,
                  const std::vector<PassComm> &pass_comms,
                  const MemoryModelParams &params = {});

/**
 * The ideal per-device memory of the same operator: total state
 * divided evenly over the devices with no replication — the baseline
 * of the paper's Fig. 2b.
 */
double opIdealMemoryBytes(const OpSpec &op, std::int64_t num_devices,
                          const MemoryModelParams &params = {});

} // namespace primepar

#endif // PRIMEPAR_SIM_MEMORY_HH
