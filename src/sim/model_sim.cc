#include "model_sim.hh"

#include <algorithm>

#include "support/logging.hh"

namespace primepar {

ModelSimulator::ModelSimulator(const ClusterTopology &topo_in,
                               const CompGraph &graph_in,
                               std::vector<PartitionSeq> strategies_in)
    : topo(topo_in), graph(graph_in), strategies(std::move(strategies_in))
{
    PRIMEPAR_ASSERT(static_cast<int>(strategies.size()) ==
                        graph.numNodes(),
                    "one strategy per node required");
    plans.reserve(graph.numNodes());
    for (int n = 0; n < graph.numNodes(); ++n)
        plans.emplace_back(graph.node(n), strategies[n], topo.numBits());
}

double
ModelSimulator::simulateEdgeRedistribution(SimContext &ctx,
                                           const GraphEdge &edge,
                                           bool forward) const
{
    const OpSpec &producer = graph.node(edge.src);
    const OpSpec &consumer = graph.node(edge.dst);
    const OpPlan &pplan = plans[edge.src];
    const OpPlan &cplan = plans[edge.dst];
    const auto sizes = graph.transferSizes(edge);

    // Producer-side dim map: identity over the producer's output dims.
    EdgeDimMap producer_map(sizes.size(), -1);
    for (std::size_t i = 0; i < edge.dimMap.size(); ++i)
        producer_map[i] = edge.dimMap[i];

    // Consumer-side dim map: the consumed tensor's own dims.
    EdgeDimMap consumer_map;
    for (int d : consumer.tensors[edge.dstTensor].dims)
        consumer_map.push_back(d);

    const Phase phase = forward ? Phase::Forward : Phase::Backward;

    TensorLayout have, need;
    if (forward) {
        have = layoutOf(producer, pplan.dsi,
                        {producer.outputTensor, false}, phase,
                        pplan.dsi.steps() - 1, producer_map, sizes);
        need = layoutOf(consumer, cplan.dsi,
                        {edge.dstTensor, false}, phase, 0, consumer_map,
                        sizes);
    } else {
        // Gradient of the transfer tensor flows consumer -> producer.
        have = layoutOf(consumer, cplan.dsi, {edge.dstTensor, true},
                        phase, cplan.dsi.steps() - 1, consumer_map,
                        sizes);
        need = layoutOf(producer, pplan.dsi,
                        {producer.outputTensor, true}, phase, 0,
                        producer_map, sizes);
    }

    const RedistPlan plan = planRedistribution(have, need, &topo);
    double max_arrival = 0.0;
    for (const BlockTransfer &tr : plan.transfers) {
        const double bytes = static_cast<double>(tr.elements) *
                             consumer.bytesPerElement;
        const double arrive =
            ctx.transfer(tr.src, tr.dst, bytes, ctx.ready[tr.src]);
        ctx.ready[tr.dst] = std::max(ctx.ready[tr.dst], arrive);
        max_arrival = std::max(max_arrival, arrive);
        if (ctx.trace) {
            ctx.trace->add(
                tr.dst, SpanKind::Redist,
                producer.name + "->" + consumer.name,
                arrive - transferWireTime(topo, tr.src, tr.dst, bytes),
                arrive);
        }
    }
    double wire = 0.0;
    for (const BlockTransfer &tr : plan.transfers) {
        wire = std::max(wire, transferWireTime(
                                  topo, tr.src, tr.dst,
                                  static_cast<double>(tr.elements) *
                                      consumer.bytesPerElement));
    }
    return wire;
}

double
modelIdealMemoryBytes(const CompGraph &graph, std::int64_t num_devices,
                      const MemoryModelParams &params)
{
    double total = 0.0;
    for (int n = 0; n < graph.numNodes(); ++n) {
        const OpSpec &op = graph.node(n);
        for (std::size_t t = 0; t < op.tensors.size(); ++t) {
            if (op.tensors[t].isParameter)
                total += op.tensorBytes(static_cast<int>(t)) *
                         params.paramStateFactor;
        }
        for (const TensorRef &ref : op.stashed) {
            if (ref.grad)
                continue;
            // Shared-stash dedup, as in ModelSimulator::simulate.
            bool producer_stashes = false;
            for (const GraphEdge *e : graph.inEdges(n)) {
                if (e->dstTensor != ref.tensor)
                    continue;
                const OpSpec &prod = graph.node(e->src);
                const TensorRef prod_out{prod.outputTensor, false};
                const auto &ps = prod.stashed;
                if (std::find(ps.begin(), ps.end(), prod_out) !=
                    ps.end())
                    producer_stashes = true;
            }
            if (!producer_stashes)
                total += op.tensorBytes(ref.tensor);
        }
    }
    return total / static_cast<double>(num_devices);
}

ModelSimResult
ModelSimulator::simulate(int num_layers, Trace *trace) const
{
    SimContext ctx(topo);
    ctx.trace = trace;
    ModelSimResult result;

    // Forward sweep.
    for (int n = 0; n < graph.numNodes(); ++n) {
        for (const GraphEdge *e : graph.inEdges(n))
            result.redistUs += simulateEdgeRedistribution(ctx, *e, true);
        const SimBreakdown b =
            simulateOpPhase(ctx, plans[n], Phase::Forward);
        result.computeUs += b.computeUs;
        result.ringUs += b.ringUs;
        result.allReduceUs += b.allReduceUs;
        result.stallUs += b.stallUs;
    }

    result.forwardUs = ctx.makespan();

    // Backward + gradient sweep.
    for (int n = graph.numNodes() - 1; n >= 0; --n) {
        for (const GraphEdge *e : graph.outEdges(n))
            result.redistUs +=
                simulateEdgeRedistribution(ctx, *e, false);
        for (Phase phase : {Phase::Backward, Phase::Gradient}) {
            const SimBreakdown b =
                simulateOpPhase(ctx, plans[n], phase);
            result.computeUs += b.computeUs;
            result.ringUs += b.ringUs;
            result.allReduceUs += b.allReduceUs;
            result.stallUs += b.stallUs;
        }
    }

    result.latencyUs = ctx.makespan() * num_layers;
    result.forwardUs *= num_layers;
    result.computeUs *= num_layers;
    result.ringUs *= num_layers;
    result.allReduceUs *= num_layers;
    result.redistUs *= num_layers;
    result.stallUs *= num_layers;

    // Peak memory: resident state of all layers + the largest
    // transient working set.
    double params = 0.0, stash = 0.0, working = 0.0;
    for (int n = 0; n < graph.numNodes(); ++n) {
        const OpSpec &op = graph.node(n);
        OpMemory mem = opMemory(op, strategies[n], plans[n].dsi,
                                plans[n].passComms);
        // A stashed input whose producing operator already stashes
        // its own output is the same physical tensor (e.g. the
        // softmax output consumed by A x V): count it once.
        for (const TensorRef &ref : op.stashed) {
            if (ref.grad)
                continue;
            for (const GraphEdge *e : graph.inEdges(n)) {
                if (e->dstTensor != ref.tensor)
                    continue;
                const OpSpec &prod = graph.node(e->src);
                const TensorRef prod_out{prod.outputTensor, false};
                const auto &ps = prod.stashed;
                if (std::find(ps.begin(), ps.end(), prod_out) !=
                    ps.end()) {
                    mem.stashBytes -=
                        static_cast<double>(
                            plans[n].dsi.tensorSliceNumel(
                                op, ref.tensor)) *
                        op.bytesPerElement;
                }
            }
        }
        params += mem.paramBytes;
        stash += mem.stashBytes;
        working = std::max(working,
                           mem.workingBytes + mem.doubleBufferBytes);
    }
    result.paramBytes = params * num_layers;
    result.stashBytes = stash * num_layers;
    result.peakMemoryBytes =
        result.paramBytes + result.stashBytes + working;
    return result;
}

} // namespace primepar
