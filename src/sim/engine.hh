/**
 * @file
 * Simulation engine primitives.
 *
 * The cluster simulator is a deterministic dependency-driven scheduler:
 * every task (kernel, point-to-point transfer, collective) has a ready
 * time given by its data dependencies and occupies FIFO resources
 * (per-device compute engine, per-device send/receive ports). This is
 * the substitution for the paper's real V100 cluster (DESIGN.md): it
 * models exactly the quantities PrimePar's claims are about — bytes
 * moved per link class, serialization, and compute/communication
 * overlap.
 */

#ifndef PRIMEPAR_SIM_ENGINE_HH
#define PRIMEPAR_SIM_ENGINE_HH

#include <algorithm>
#include <vector>

#include "topology/cluster.hh"
#include "topology/groups.hh"
#include "trace.hh"

namespace primepar {

/** A serially-occupied resource (compute engine, NIC port). */
class Resource
{
  public:
    /** Occupy for @p duration, starting no earlier than @p ready.
     *  @return completion time. */
    double
    occupy(double ready, double duration)
    {
        const double start = std::max(ready, freeTime);
        freeTime = start + duration;
        return freeTime;
    }

    /** Next instant the resource is free. */
    double freeAt() const { return freeTime; }

    void reset() { freeTime = 0.0; }

  private:
    double freeTime = 0.0;
};

/** Kernel duration for @p flops of math and @p bytes of memory traffic. */
double computeDuration(const DeviceSpec &spec, double flops, double bytes);

/** Wire duration of a point-to-point transfer (no queueing). */
double transferWireTime(const ClusterTopology &topo, std::int64_t src,
                        std::int64_t dst, double bytes);

/**
 * Duration of a ring all-reduce of @p bytes over @p group: 2(g-1)
 * chunk rounds of bytes/g over the bottleneck link.
 */
double ringAllReduceDuration(const ClusterTopology &topo,
                             const DeviceGroup &group, double bytes);

/** Duration of a ring reduce-scatter (half of the all-reduce). */
double reduceScatterDuration(const ClusterTopology &topo,
                             const DeviceGroup &group, double bytes);

/**
 * Expected latency inflation of an unreliable interconnect. Mirrors
 * the runtime transport's recovery protocol in the simulator: dropped
 * or corrupted messages are detected and retried (each failed attempt
 * pays the wire time plus a backoff), stragglers stretch the final
 * attempt. Probabilities are per transfer.
 */
struct FaultSimModel
{
    double dropProb = 0.0;
    double corruptProb = 0.0;
    double stragglerProb = 0.0;
    /** A straggling attempt takes this multiple of the wire time. */
    double stragglerFactor = 8.0;
    /** Simulated backoff paid per failed attempt, us. */
    double retryBackoffUs = 50.0;

    /** Expected transfer duration given clean wire time @p wire. */
    double expectedTransferUs(double wire) const;
};

/** Shared mutable state of one simulation run. */
struct SimContext
{
    explicit SimContext(const ClusterTopology &topo);

    const ClusterTopology &topo;
    std::vector<Resource> computeEngine;
    std::vector<Resource> sendPort;
    std::vector<Resource> recvPort;
    /** Per-device logical clock: completion of its last dependency. */
    std::vector<double> ready;
    /** Optional span recorder (not owned); null disables tracing. */
    Trace *trace = nullptr;
    /** Optional fault-aware latency model (not owned); null = clean
     *  links. */
    const FaultSimModel *faults = nullptr;

    /** Route one transfer through the ports; returns arrival time. */
    double transfer(std::int64_t src, std::int64_t dst, double bytes,
                    double ready_time);

    /** Reset all resources and clocks. */
    void reset();

    /** Latest per-device clock (iteration makespan). */
    double makespan() const;
};

} // namespace primepar

#endif // PRIMEPAR_SIM_ENGINE_HH
