/**
 * @file
 * Execution-timeline recording and Chrome-trace export.
 *
 * The paper's Fig. 9 shows per-device kernel execution timelines of
 * the compared plans. Both the simulator and the real SPMD runtime
 * (via TracingObserver) record every compute kernel, ring transfer,
 * collective, redistribution and checkpoint as a span; this module
 * renders the recording either as chrome://tracing JSON (load the
 * file in a trace viewer), as a compact ASCII timeline for terminals,
 * or as a per-kind ASCII summary.
 *
 * Span kinds are a closed enum (SpanKind) rather than free-form
 * strings, so runtime traces and simulator traces merge into one
 * viewer file without label skew.
 */

#ifndef PRIMEPAR_SIM_TRACE_HH
#define PRIMEPAR_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace primepar {

/** The closed vocabulary of execution span kinds. */
enum class SpanKind
{
    Compute,    ///< a per-device sub-operator kernel
    Ring,       ///< ring shift / accumulator migration send-recv
    RingJoin,   ///< time the step join blocked on posted transfers
    AllReduce,  ///< grouped all-reduce participation
    Redist,     ///< redistribution (scatter/gather) traffic
    Checkpoint, ///< checkpoint save or restore
};

/** Stable lowercase name, also the Chrome-trace category. */
const char *toString(SpanKind kind);

/** One recorded execution span. */
struct TraceSpan
{
    std::int64_t device = 0;
    SpanKind kind = SpanKind::Compute;
    std::string label;
    double startUs = 0.0;
    double endUs = 0.0;
};

/** A recording of one simulated or real run. */
class Trace
{
  public:
    /** Append a span. */
    void add(std::int64_t device, SpanKind kind, std::string label,
             double start_us, double end_us);

    const std::vector<TraceSpan> &spans() const { return spansVec; }
    bool empty() const { return spansVec.empty(); }
    void clear() { spansVec.clear(); }

    /** Latest span end. */
    double endUs() const;

    /** chrome://tracing "trace event" JSON. */
    std::string toChromeJson() const;

    /**
     * ASCII rendering: one row per device, @p width columns; compute
     * spans print '#', ring '~', all-reduce 'A', redistribution 'r',
     * checkpoint 'C'.
     */
    std::string toAscii(int width = 72) const;

    /**
     * ASCII summary: per span kind, the span count and the total and
     * maximum-per-device busy time — the terminal-friendly digest of
     * a recorded run.
     */
    std::string summary() const;

  private:
    std::vector<TraceSpan> spansVec;
};

/**
 * Compute/communication overlap digest of a recorded run: how much of
 * the ring-transfer time was hidden from the step's critical path.
 * This is the runtime measurement of the paper's Fig. 9 claim — ring
 * traffic that the blocked GEMMs hide costs no wall-clock time.
 *
 * Hidden time is the larger of two views, so the digest is meaningful
 * on any host:
 *  - wall-interval overlap: Ring span time lying under the union of
 *    Compute span intervals (true concurrency on multi-core hosts);
 *  - join exposure: posted transfer time minus the RingJoin stalls —
 *    on a single hardware thread the comm worker timeshares with
 *    compute, so a transfer is "hidden" exactly when the step's join
 *    did not have to wait for it.
 * A trace with no RingJoin spans (strictly synchronous execution)
 * only gets the first view.
 */
struct OverlapStats
{
    double transferUs = 0.0; ///< summed ring-shift span durations
    double hiddenUs = 0.0;   ///< portion off the critical path

    /** Fraction of transfer time hidden behind compute (1.0 when the
     *  run had no ring traffic at all). */
    double
    efficiency() const
    {
        return transferUs > 0.0 ? hiddenUs / transferUs : 1.0;
    }
};

/** Measure @p trace's ring/compute overlap (any device's compute
 *  hides any device's transfer — the emulated devices share the
 *  machine's execution resources). */
OverlapStats overlapStats(const Trace &trace);

} // namespace primepar

#endif // PRIMEPAR_SIM_TRACE_HH
