/**
 * @file
 * Execution-timeline recording and Chrome-trace export.
 *
 * The paper's Fig. 9 shows per-device kernel execution timelines of
 * the compared plans. The simulator can record every compute kernel,
 * ring transfer and collective as a span; this module renders the
 * recording either as chrome://tracing JSON (load the file in a
 * trace viewer) or as a compact ASCII timeline for terminals.
 */

#ifndef PRIMEPAR_SIM_TRACE_HH
#define PRIMEPAR_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace primepar {

/** One recorded execution span. */
struct TraceSpan
{
    std::int64_t device = 0;
    /** "compute", "ring", "allreduce", "redist". */
    std::string kind;
    std::string label;
    double startUs = 0.0;
    double endUs = 0.0;
};

/** A recording of one simulated run. */
class Trace
{
  public:
    /** Append a span (ignored when the trace is disabled). */
    void add(std::int64_t device, std::string kind, std::string label,
             double start_us, double end_us);

    const std::vector<TraceSpan> &spans() const { return spansVec; }
    bool empty() const { return spansVec.empty(); }
    void clear() { spansVec.clear(); }

    /** Latest span end. */
    double endUs() const;

    /** chrome://tracing "trace event" JSON. */
    std::string toChromeJson() const;

    /**
     * ASCII rendering: one row per device, @p width columns; compute
     * spans print '#', ring '~', all-reduce 'A', redistribution 'r'.
     */
    std::string toAscii(int width = 72) const;

  private:
    std::vector<TraceSpan> spansVec;
};

} // namespace primepar

#endif // PRIMEPAR_SIM_TRACE_HH
