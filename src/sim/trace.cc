#include "trace.hh"

#include <algorithm>
#include <map>
#include <sstream>

namespace primepar {

const char *
toString(SpanKind kind)
{
    switch (kind) {
    case SpanKind::Compute: return "compute";
    case SpanKind::Ring: return "ring";
    case SpanKind::AllReduce: return "allreduce";
    case SpanKind::Redist: return "redist";
    case SpanKind::Checkpoint: return "checkpoint";
    }
    return "unknown";
}

void
Trace::add(std::int64_t device, SpanKind kind, std::string label,
           double start_us, double end_us)
{
    spansVec.push_back(
        {device, kind, std::move(label), start_us, end_us});
}

double
Trace::endUs() const
{
    double end = 0.0;
    for (const auto &s : spansVec)
        end = std::max(end, s.endUs);
    return end;
}

std::string
Trace::toChromeJson() const
{
    std::ostringstream os;
    os << "[\n";
    bool first = true;
    for (const auto &s : spansVec) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"name\": \"" << s.label << "\", \"cat\": \""
           << toString(s.kind) << "\", \"ph\": \"X\", \"ts\": "
           << s.startUs << ", \"dur\": " << (s.endUs - s.startUs)
           << ", \"pid\": 0, \"tid\": " << s.device << "}";
    }
    os << "\n]\n";
    return os.str();
}

std::string
Trace::toAscii(int width) const
{
    if (spansVec.empty())
        return "(empty trace)\n";
    const double total = endUs();
    if (total <= 0.0)
        return "(empty trace)\n";

    std::map<std::int64_t, std::string> rows;
    for (const auto &s : spansVec) {
        auto [it, inserted] =
            rows.emplace(s.device, std::string(width, '.'));
        std::string &row = it->second;
        int a = static_cast<int>(s.startUs / total * width);
        int b = static_cast<int>(s.endUs / total * width);
        a = std::clamp(a, 0, width - 1);
        b = std::clamp(b, a + 1, width);
        char c = '?';
        switch (s.kind) {
        case SpanKind::Compute: c = '#'; break;
        case SpanKind::Ring: c = '~'; break;
        case SpanKind::AllReduce: c = 'A'; break;
        case SpanKind::Redist: c = 'r'; break;
        case SpanKind::Checkpoint: c = 'C'; break;
        }
        for (int i = a; i < b; ++i) {
            // Compute dominates the glyph; comm shows in gaps.
            if (row[i] == '.' || c == '#')
                row[i] = c;
        }
    }

    std::ostringstream os;
    for (const auto &[device, row] : rows)
        os << "dev " << device << " |" << row << "|\n";
    os << "        (" << "#=compute, ~=ring, A=all-reduce, r=redist, "
       << "C=checkpoint; span " << total << " us)\n";
    return os.str();
}

std::string
Trace::summary() const
{
    if (spansVec.empty())
        return "(empty trace)\n";

    struct KindTotals
    {
        std::int64_t count = 0;
        double totalUs = 0.0;
        std::map<std::int64_t, double> perDevice;
    };
    std::map<SpanKind, KindTotals> kinds;
    for (const auto &s : spansVec) {
        KindTotals &k = kinds[s.kind];
        ++k.count;
        const double dur = s.endUs - s.startUs;
        k.totalUs += dur;
        k.perDevice[s.device] += dur;
    }

    std::ostringstream os;
    os << "span summary (" << spansVec.size() << " spans, "
       << endUs() << " us wall):\n";
    for (const auto &[kind, k] : kinds) {
        double worst = 0.0;
        for (const auto &[dev, us] : k.perDevice)
            worst = std::max(worst, us);
        os << "  " << toString(kind) << ": " << k.count
           << " spans, total " << k.totalUs << " us, busiest device "
           << worst << " us\n";
    }
    return os.str();
}

} // namespace primepar
