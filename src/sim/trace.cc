#include "trace.hh"

#include <algorithm>
#include <map>
#include <sstream>

namespace primepar {

void
Trace::add(std::int64_t device, std::string kind, std::string label,
           double start_us, double end_us)
{
    spansVec.push_back(
        {device, std::move(kind), std::move(label), start_us, end_us});
}

double
Trace::endUs() const
{
    double end = 0.0;
    for (const auto &s : spansVec)
        end = std::max(end, s.endUs);
    return end;
}

std::string
Trace::toChromeJson() const
{
    std::ostringstream os;
    os << "[\n";
    bool first = true;
    for (const auto &s : spansVec) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"name\": \"" << s.label << "\", \"cat\": \""
           << s.kind << "\", \"ph\": \"X\", \"ts\": " << s.startUs
           << ", \"dur\": " << (s.endUs - s.startUs)
           << ", \"pid\": 0, \"tid\": " << s.device << "}";
    }
    os << "\n]\n";
    return os.str();
}

std::string
Trace::toAscii(int width) const
{
    if (spansVec.empty())
        return "(empty trace)\n";
    const double total = endUs();
    if (total <= 0.0)
        return "(empty trace)\n";

    std::map<std::int64_t, std::string> rows;
    for (const auto &s : spansVec) {
        auto [it, inserted] =
            rows.emplace(s.device, std::string(width, '.'));
        std::string &row = it->second;
        int a = static_cast<int>(s.startUs / total * width);
        int b = static_cast<int>(s.endUs / total * width);
        a = std::clamp(a, 0, width - 1);
        b = std::clamp(b, a + 1, width);
        char c = '?';
        if (s.kind == "compute")
            c = '#';
        else if (s.kind == "ring")
            c = '~';
        else if (s.kind == "allreduce")
            c = 'A';
        else if (s.kind == "redist")
            c = 'r';
        for (int i = a; i < b; ++i) {
            // Compute dominates the glyph; comm shows in gaps.
            if (row[i] == '.' || c == '#')
                row[i] = c;
        }
    }

    std::ostringstream os;
    for (const auto &[device, row] : rows)
        os << "dev " << device << " |" << row << "|\n";
    os << "        (" << "#=compute, ~=ring, A=all-reduce, r=redist; "
       << "span " << total << " us)\n";
    return os.str();
}

} // namespace primepar
