#include "trace.hh"

#include <algorithm>
#include <map>
#include <sstream>

namespace primepar {

const char *
toString(SpanKind kind)
{
    switch (kind) {
    case SpanKind::Compute: return "compute";
    case SpanKind::Ring: return "ring";
    case SpanKind::RingJoin: return "ring-join";
    case SpanKind::AllReduce: return "allreduce";
    case SpanKind::Redist: return "redist";
    case SpanKind::Checkpoint: return "checkpoint";
    }
    return "unknown";
}

void
Trace::add(std::int64_t device, SpanKind kind, std::string label,
           double start_us, double end_us)
{
    spansVec.push_back(
        {device, kind, std::move(label), start_us, end_us});
}

double
Trace::endUs() const
{
    double end = 0.0;
    for (const auto &s : spansVec)
        end = std::max(end, s.endUs);
    return end;
}

std::string
Trace::toChromeJson() const
{
    std::ostringstream os;
    os << "[\n";
    bool first = true;
    for (const auto &s : spansVec) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"name\": \"" << s.label << "\", \"cat\": \""
           << toString(s.kind) << "\", \"ph\": \"X\", \"ts\": "
           << s.startUs << ", \"dur\": " << (s.endUs - s.startUs)
           << ", \"pid\": 0, \"tid\": " << s.device << "}";
    }
    os << "\n]\n";
    return os.str();
}

std::string
Trace::toAscii(int width) const
{
    if (spansVec.empty())
        return "(empty trace)\n";
    const double total = endUs();
    if (total <= 0.0)
        return "(empty trace)\n";

    std::map<std::int64_t, std::string> rows;
    for (const auto &s : spansVec) {
        auto [it, inserted] =
            rows.emplace(s.device, std::string(width, '.'));
        std::string &row = it->second;
        int a = static_cast<int>(s.startUs / total * width);
        int b = static_cast<int>(s.endUs / total * width);
        a = std::clamp(a, 0, width - 1);
        b = std::clamp(b, a + 1, width);
        char c = '?';
        switch (s.kind) {
        case SpanKind::Compute: c = '#'; break;
        case SpanKind::Ring: c = '~'; break;
        case SpanKind::RingJoin: c = 'j'; break;
        case SpanKind::AllReduce: c = 'A'; break;
        case SpanKind::Redist: c = 'r'; break;
        case SpanKind::Checkpoint: c = 'C'; break;
        }
        for (int i = a; i < b; ++i) {
            // Compute dominates the glyph; comm shows in gaps.
            if (row[i] == '.' || c == '#')
                row[i] = c;
        }
    }

    std::ostringstream os;
    for (const auto &[device, row] : rows)
        os << "dev " << device << " |" << row << "|\n";
    os << "        (" << "#=compute, ~=ring, A=all-reduce, r=redist, "
       << "C=checkpoint; span " << total << " us)\n";
    return os.str();
}

std::string
Trace::summary() const
{
    if (spansVec.empty())
        return "(empty trace)\n";

    struct KindTotals
    {
        std::int64_t count = 0;
        double totalUs = 0.0;
        std::map<std::int64_t, double> perDevice;
    };
    std::map<SpanKind, KindTotals> kinds;
    for (const auto &s : spansVec) {
        KindTotals &k = kinds[s.kind];
        ++k.count;
        const double dur = s.endUs - s.startUs;
        k.totalUs += dur;
        k.perDevice[s.device] += dur;
    }

    std::ostringstream os;
    os << "span summary (" << spansVec.size() << " spans, "
       << endUs() << " us wall):\n";
    for (const auto &[kind, k] : kinds) {
        double worst = 0.0;
        for (const auto &[dev, us] : k.perDevice)
            worst = std::max(worst, us);
        os << "  " << toString(kind) << ": " << k.count
           << " spans, total " << k.totalUs << " us, busiest device "
           << worst << " us\n";
    }
    return os.str();
}

OverlapStats
overlapStats(const Trace &trace)
{
    // Merge all compute spans into a sorted union of disjoint
    // intervals, then clip each ring span against it.
    std::vector<std::pair<double, double>> compute;
    for (const TraceSpan &s : trace.spans()) {
        if (s.kind == SpanKind::Compute && s.endUs > s.startUs)
            compute.emplace_back(s.startUs, s.endUs);
    }
    std::sort(compute.begin(), compute.end());
    std::vector<std::pair<double, double>> merged;
    for (const auto &iv : compute) {
        if (!merged.empty() && iv.first <= merged.back().second)
            merged.back().second =
                std::max(merged.back().second, iv.second);
        else
            merged.push_back(iv);
    }

    OverlapStats stats;
    double concurrent = 0.0, exposed = 0.0;
    bool any_join = false;
    for (const TraceSpan &s : trace.spans()) {
        if (s.kind == SpanKind::RingJoin) {
            // The join stall is the transfer time the step could not
            // hide (zero-length joins still mark the trace as posted).
            exposed += std::max(0.0, s.endUs - s.startUs);
            any_join = true;
            continue;
        }
        if (s.kind != SpanKind::Ring || s.endUs <= s.startUs)
            continue;
        // Step-shift transfers only — accumulator migrations ("acc
        // <tensor>") stay synchronous by design and are not part of
        // the overlap budget.
        if (s.label.rfind("ring ", 0) != 0)
            continue;
        stats.transferUs += s.endUs - s.startUs;
        // First merged interval ending after the span starts.
        auto it = std::lower_bound(
            merged.begin(), merged.end(), s.startUs,
            [](const std::pair<double, double> &iv, double t) {
                return iv.second <= t;
            });
        for (; it != merged.end() && it->first < s.endUs; ++it) {
            concurrent += std::min(s.endUs, it->second) -
                          std::max(s.startUs, it->first);
        }
    }
    // Two views of "hidden" (see OverlapStats): genuine wall-clock
    // concurrency, and — when transfers were posted ahead — the part
    // the join never had to wait for. Take the stronger claim.
    stats.hiddenUs = concurrent;
    if (any_join) {
        stats.hiddenUs = std::max(
            stats.hiddenUs,
            std::max(0.0, stats.transferUs - exposed));
    }
    return stats;
}

} // namespace primepar
