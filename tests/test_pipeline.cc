/**
 * @file
 * Tests of 3D parallelism composition (Sec. 6.4).
 */

#include <gtest/gtest.h>

#include "pipeline/three_d.hh"

namespace primepar {
namespace {

TEST(ThreeD, ConfigEnumerationCoversFactorizations)
{
    const auto configs = threeDConfigs(32);
    // p in {2,4,8,16,32}, d*m filling the rest: 5+4+3+2+1 = 15.
    EXPECT_EQ(configs.size(), 15u);
    for (const auto &c : configs) {
        EXPECT_GT(c.p, 1);
        EXPECT_EQ(c.devices(), 32);
    }
}

TEST(ThreeD, ConfigToString)
{
    EXPECT_EQ((ThreeDConfig{2, 4, 4}.toString()), "(2,4,4)");
}

struct ThreeDFixture
{
    ThreeDFixture() : model(opt6p7b())
    {
        model.seqLength = 512; // lighter for tests
        evaluator = std::make_unique<ThreeDEvaluator>(model, 32, 4);
        block = buildTransformerBlock(model, 4);
    }

    ModelConfig model;
    std::unique_ptr<ThreeDEvaluator> evaluator;
    CompGraph block;
};

TEST(ThreeD, EvaluatesMegatronConfig)
{
    ThreeDFixture f;
    const ThreeDConfig cfg{2, 4, 4};
    const auto strat = megatronStrategies(f.block, {1, cfg.m});
    ASSERT_TRUE(strat.has_value());
    const ThreeDResult r = f.evaluator->evaluate(cfg, f.block, *strat);
    EXPECT_GT(r.iterationUs, 0.0);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GT(r.bubbleUs, 0.0);
    EXPECT_GT(r.gradAllReduceUs, 0.0); // d = 4
}

TEST(ThreeD, NoGradAllReduceWithoutDataParallelism)
{
    ThreeDFixture f;
    const ThreeDConfig cfg{2, 1, 16};
    const auto strat = megatronStrategies(f.block, {1, cfg.m});
    ASSERT_TRUE(strat.has_value());
    const ThreeDResult r = f.evaluator->evaluate(cfg, f.block, *strat);
    EXPECT_EQ(r.gradAllReduceUs, 0.0);
}

TEST(ThreeD, DeeperPipelineMoreBubble)
{
    ThreeDFixture f;
    const auto s4 = megatronStrategies(f.block, {1, 4});
    ASSERT_TRUE(s4.has_value());
    const ThreeDResult p2 =
        f.evaluator->evaluate({2, 4, 4}, f.block, *s4);
    const ThreeDResult p8 =
        f.evaluator->evaluate({8, 1, 4}, f.block, *s4);
    // Bubble rounds grow with p (per-round time differs; compare
    // bubble share).
    EXPECT_GT(p8.bubbleUs / p8.iterationUs,
              p2.bubbleUs / p2.iterationUs * 0.99);
}

TEST(ThreeD, LargeModelPrefersModelParallelOverDataParallel)
{
    // With 175B-scale weights, pure data parallelism cannot even fit
    // the weights in device memory, and d > 1 pays a huge gradient
    // all-reduce: (2,1,16) must beat (2,16,1) — the paper's Fig. 10
    // observation that >100B models peak at (2,1,16).
    ModelConfig model = opt175b();
    model.seqLength = 512;
    ThreeDEvaluator eval(model, 128, 4);
    const CompGraph block = buildTransformerBlock(model, 4);

    const auto s16 = megatronStrategies(block, {1, 16});
    ASSERT_TRUE(s16.has_value());
    const ThreeDResult mp = eval.evaluate({2, 1, 16}, block, *s16);
    EXPECT_TRUE(mp.feasible);

    const auto s1 = megatronStrategies(block, {1, 1});
    ASSERT_TRUE(s1.has_value());
    const ThreeDResult dp = eval.evaluate({2, 16, 1}, block, *s1);
    EXPECT_FALSE(dp.feasible);

    EXPECT_GT(mp.throughput, dp.throughput);
}

TEST(ThreeD, MemoryAccountsForInFlightMicrobatches)
{
    ModelConfig model = opt6p7b();
    model.seqLength = 512;
    ThreeDEvaluator eval(model, 128, 4);
    const CompGraph block = buildTransformerBlock(model, 4);
    const auto strat = megatronStrategies(block, {1, 4});
    ASSERT_TRUE(strat.has_value());
    // Deeper pipelines stash more in-flight activations per device
    // even though each stage holds fewer layers... compare at equal
    // layers by contrasting p=2 vs p=4 peak memory ratios.
    const ThreeDResult p2 = eval.evaluate({2, 4, 4}, block, *strat);
    const ThreeDResult p4 = eval.evaluate({4, 2, 4}, block, *strat);
    EXPECT_GT(p2.peakMemoryBytes, 0.0);
    EXPECT_GT(p4.peakMemoryBytes, 0.0);
    // p=4 stage holds half the layers: params shrink.
    EXPECT_LT(p4.peakMemoryBytes, p2.peakMemoryBytes);
}

} // namespace
} // namespace primepar
