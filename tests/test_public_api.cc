/**
 * @file
 * Public-API smoke test: the umbrella header must compile standalone
 * and the documented end-to-end flow (profile -> build graph ->
 * search -> simulate -> execute) must work through it.
 */

#include "primepar.hh"

#include <gtest/gtest.h>

namespace primepar {
namespace {

TEST(PublicApi, EndToEndFlowThroughUmbrellaHeader)
{
    // Small cluster and model.
    const ClusterTopology topo = ClusterTopology::paperCluster(4);
    const CostModel cost(topo, profileModels(topo));
    ModelConfig model = opt6p7b();
    model.seqLength = 256;
    const CompGraph graph = buildMlpBlock(model, 8);

    // Search.
    DpOptions opts;
    const DpResult plan = SegmentedDpOptimizer(graph, cost, opts).optimize();
    ASSERT_EQ(plan.strategies.size(), 3u);

    // Simulate.
    const ModelSimulator sim(topo, graph, plan.strategies);
    const ModelSimResult r = sim.simulate();
    EXPECT_GT(r.latencyUs, 0.0);

    // Execute functionally (tiny shapes).
    const OpSpec op = makeLinearOp("fc", 2, 4, 4, 4);
    Rng rng(1);
    std::map<std::string, Tensor> inputs{
        {"I", Tensor::random(Shape{2, 4, 4}, rng)},
        {"W", Tensor::random(Shape{4, 4}, rng)},
        {"dO", Tensor::random(Shape{2, 4, 4}, rng)},
    };
    SpmdOpExecutor exec(op, parseSequence(op, "P2x2"), 2);
    const TrainStepResult out = exec.run(inputs);
    const TrainStepResult ref = referenceTrainStep(op, inputs);
    EXPECT_TRUE(out.output.allClose(ref.output, 1e-4f, 1e-5f));
}

TEST(PublicApi, ObservabilitySurfaceThroughUmbrellaHeader)
{
    // The observability + calibration API must be reachable from the
    // single supported include: observe a real executor run, snapshot
    // metrics as JSON, and round-trip ProfiledModels.
    const OpSpec op = makeLinearOp("fc", 2, 4, 4, 4);
    Rng rng(3);
    std::map<std::string, Tensor> inputs{
        {"I", Tensor::random(Shape{2, 4, 4}, rng)},
        {"W", Tensor::random(Shape{4, 4}, rng)},
        {"dO", Tensor::random(Shape{2, 4, 4}, rng)},
    };

    TracingObserver tracer;
    MetricsRegistry registry;
    MetricsObserver metrics(&registry);
    SpmdOpExecutor exec(op, parseSequence(op, "P2x2"), 2);
    exec.addObserver(&tracer);
    exec.addObserver(&metrics);
    (void)exec.run(inputs);

    EXPECT_FALSE(tracer.snapshot().empty());
    const JsonValue snapshot =
        parseJson(registry.snapshotJson().toString());
    EXPECT_TRUE(snapshot.isObject());

    const ClusterTopology topo = ClusterTopology::paperCluster(4);
    const ProfiledModels models = profileModels(topo);
    const ProfiledModels back =
        profiledModelsFromJson(profiledModelsToJson(models));
    EXPECT_EQ(back.matmulKernel.intercept, models.matmulKernel.intercept);
    EXPECT_EQ(back.matmulKernel.slope, models.matmulKernel.slope);
    EXPECT_EQ(back.allReduce.size(), models.allReduce.size());

    // RuntimeOptions is the one knob struct for the whole stack.
    RuntimeOptions opts;
    opts.numBits = 2;
    opts.execution.numThreads = 2;
    EXPECT_EQ(opts.checkpoint.maxReplans, 2);
}

TEST(PublicApi, TensorPermute)
{
    Rng rng(2);
    const Tensor t = Tensor::random(Shape{2, 3, 4}, rng);
    const Tensor p = t.permute({2, 0, 1});
    EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
    for (std::int64_t a = 0; a < 2; ++a)
        for (std::int64_t b = 0; b < 3; ++b)
            for (std::int64_t c = 0; c < 4; ++c)
                EXPECT_EQ(p.at({c, a, b}), t.at({a, b, c}));
    // Permute twice with the inverse recovers the original.
    const Tensor back = p.permute({1, 2, 0});
    EXPECT_EQ(back.maxAbsDiff(t), 0.0f);
}

} // namespace
} // namespace primepar
