/**
 * @file
 * Tests of the segmented DP optimizer: optimality against brute force
 * on small graphs (the paper's Sec. 5.2 claim), segmentation handling
 * of skip edges, catalog/edge-table construction, and end-to-end
 * search behaviour on the transformer block.
 */

#include <memory>

#include <gtest/gtest.h>

#include "baselines/megatron.hh"
#include "graph/transformer.hh"
#include "optimizer/catalog.hh"
#include "optimizer/catalog_cache.hh"
#include "optimizer/segmented_dp.hh"
#include "runtime/metrics.hh"

namespace primepar {
namespace {

/** Small MLP-block fixture over a 4-device node. */
struct SmallFixture
{
    SmallFixture()
        : topo(ClusterTopology::paperCluster(4)),
          models(profileModels(topo)), cost(topo, models)
    {
        ModelConfig cfg = opt6p7b();
        cfg.seqLength = 512;
        graph = buildMlpBlock(cfg, 8);
    }

    ClusterTopology topo;
    ProfiledModels models;
    CostModel cost;
    CompGraph graph;
};

TEST(Catalog, BuildsAllSequencesWithCosts)
{
    SmallFixture f;
    const auto cat = buildNodeCatalog(f.graph, 0, f.cost, {});
    EXPECT_GT(cat.size(), 16); // 4^2 ByDim + PSquare variants
    EXPECT_EQ(cat.seqs.size(), cat.plans.size());
    EXPECT_EQ(cat.seqs.size(), cat.intraCost.size());
    for (double c : cat.intraCost)
        EXPECT_GT(c, 0.0);
}

TEST(Catalog, EdgeTableSymmetryForAlignedPairs)
{
    SmallFixture f;
    const auto src = buildNodeCatalog(f.graph, 0, f.cost, {});
    const auto dst = buildNodeCatalog(f.graph, 1, f.cost, {});
    const auto table = buildEdgeCostTable(
        f.graph, f.graph.edges()[0], src, dst, f.cost);
    EXPECT_EQ(table.srcSize, src.size());
    EXPECT_EQ(table.dstSize, dst.size());

    // fc1 partitioned B,K feeding relu partitioned B,F is perfectly
    // aligned: zero redistribution cost.
    int fc1_bk = -1, relu_bf = -1;
    const PartitionSeq bk({PartitionStep::byDim(0),
                           PartitionStep::byDim(3)});
    const PartitionSeq bf({PartitionStep::byDim(0),
                           PartitionStep::byDim(2)});
    for (int i = 0; i < src.size(); ++i)
        if (src.seqs[i] == bk)
            fc1_bk = i;
    for (int i = 0; i < dst.size(); ++i)
        if (dst.seqs[i] == bf)
            relu_bf = i;
    ASSERT_GE(fc1_bk, 0);
    ASSERT_GE(relu_bf, 0);
    EXPECT_EQ(table.at(fc1_bk, relu_bf), 0.0);

    // Misaligned pair costs something: fc1 split B,K feeding relu
    // split M,M.
    const PartitionSeq mm({PartitionStep::byDim(1),
                           PartitionStep::byDim(1)});
    int relu_mm = -1;
    for (int i = 0; i < dst.size(); ++i)
        if (dst.seqs[i] == mm)
            relu_mm = i;
    ASSERT_GE(relu_mm, 0);
    EXPECT_GT(table.at(fc1_bk, relu_mm), 0.0);
}

TEST(SegmentedDp, MatchesBruteForceOnChain)
{
    SmallFixture f;
    DpOptions opts;
    const DpResult dp =
        SegmentedDpOptimizer(f.graph, f.cost, opts).optimize();
    const DpResult bf =
        bruteForceOptimize(f.graph, f.cost, opts.space);
    EXPECT_NEAR(dp.layerCost, bf.layerCost,
                1e-6 * std::max(1.0, bf.layerCost));
    // The DP's chosen strategies evaluate to its reported cost.
    EXPECT_EQ(dp.strategies.size(), 3u);
}

TEST(SegmentedDp, MatchesBruteForceOnGraphWithSkipEdge)
{
    // Tiny residual graph: n0 -> n1 -> n2(add), skip n0 -> n2.
    const auto topo = ClusterTopology::paperCluster(4);
    const CostModel cost(topo, profileModels(topo));

    CompGraph g;
    g.addNode(makeElementwiseOp("input", {"B", "M", "H"},
                                {8, 256, 1024}, 0.0));
    g.addNode(makeElementwiseOp("gelu", {"B", "M", "H"},
                                {8, 256, 1024}));
    g.addNode(makeAddOp("res", {"B", "M", "H"}, {8, 256, 1024}));
    g.addEdge(0, 1, 0, {0, 1, 2});
    g.addEdge(1, 2, 0, {0, 1, 2});
    g.addEdge(0, 2, 1, {0, 1, 2});

    DpOptions opts;
    const DpResult dp = SegmentedDpOptimizer(g, cost, opts).optimize();
    const DpResult bf = bruteForceOptimize(g, cost, opts.space);
    EXPECT_NEAR(dp.layerCost, bf.layerCost,
                1e-6 * std::max(1.0, bf.layerCost));
}

TEST(SegmentedDp, PrimeParNoWorseThanConventionalSpace)
{
    SmallFixture f;
    DpOptions with;
    DpOptions without;
    without.space.allowPSquare = false;
    const DpResult pp =
        SegmentedDpOptimizer(f.graph, f.cost, with).optimize();
    const DpResult conv =
        SegmentedDpOptimizer(f.graph, f.cost, without).optimize();
    EXPECT_LE(pp.layerCost, conv.layerCost + 1e-9);
}

TEST(SegmentedDp, PicksPSquareForBigLinearsOnOneNode)
{
    // Large MLP on 4 NVLink devices: the optimum should use the
    // temporal primitive on at least one linear (the paper's headline
    // behaviour).
    const auto topo = ClusterTopology::paperCluster(4);
    const CostModel cost(topo, profileModels(topo));
    const CompGraph g = buildMlpBlock(opt175b(), 8);

    DpOptions opts;
    opts.space.excludedDims = {0}; // isolate tensor parallelism
    const DpResult dp = SegmentedDpOptimizer(g, cost, opts).optimize();
    const bool uses_psquare = dp.strategies[0].hasPSquare() ||
                              dp.strategies[2].hasPSquare();
    EXPECT_TRUE(uses_psquare)
        << "fc1: " << dp.strategies[0].toString(g.node(0)) << ", fc2: "
        << dp.strategies[2].toString(g.node(2));
}

TEST(SegmentedDp, TransformerBlockFullSearch)
{
    const auto topo = ClusterTopology::paperCluster(8);
    const CostModel cost(topo, profileModels(topo));
    ModelConfig cfg = opt6p7b();
    const CompGraph g = buildTransformerBlock(cfg, 8);

    DpOptions opts;
    opts.numLayers = cfg.numLayers;
    const DpResult dp = SegmentedDpOptimizer(g, cost, opts).optimize();
    EXPECT_EQ(dp.strategies.size(), 13u);
    EXPECT_GT(dp.layerCost, 0.0);
    // Stacked cost ~ layers x layer cost (minus shared boundaries).
    EXPECT_GT(dp.totalCost, dp.layerCost * (cfg.numLayers - 1));
    EXPECT_GT(dp.optimizationMs, 0.0);

    // Every chosen strategy is valid for its node.
    for (int n = 0; n < g.numNodes(); ++n)
        EXPECT_TRUE(dp.strategies[n].validate(g.node(n)).empty());
}

TEST(SegmentedDp, StackedLayersPreferAlignedBoundaries)
{
    SmallFixture f;
    DpOptions opts;
    opts.numLayers = 8;
    const DpResult dp =
        SegmentedDpOptimizer(f.graph, f.cost, opts).optimize();
    EXPECT_GE(dp.totalCost, dp.layerCost);
    EXPECT_LE(dp.totalCost, 8.0 * dp.layerCost + 1e-6);
}

TEST(SegmentedDp, BitIdenticalAcrossThreadCounts)
{
    // The determinism contract of support/parallel.hh: every thread
    // count yields the same strategies and the exact same costs.
    const auto topo = ClusterTopology::paperCluster(8);
    const CostModel cost(topo, profileModels(topo));
    ModelConfig cfg = opt6p7b();
    const CompGraph g = buildTransformerBlock(cfg, 8);

    const auto run = [&](int threads) {
        DpOptions opts;
        opts.numLayers = cfg.numLayers;
        opts.numThreads = threads;
        return SegmentedDpOptimizer(g, cost, opts).optimize();
    };
    const DpResult serial = run(1);
    for (int threads : {2, 8, 0}) {
        const DpResult r = run(threads);
        EXPECT_EQ(r.strategies, serial.strategies)
            << "threads = " << threads;
        EXPECT_EQ(r.layerCost, serial.layerCost)
            << "threads = " << threads;
        EXPECT_EQ(r.totalCost, serial.totalCost)
            << "threads = " << threads;
    }
}

TEST(SegmentedDp, IdenticalNodesShareOneCatalog)
{
    // The transformer block repeats structures (two layernorms, two
    // residual adds): fewer catalogs are built than nodes exist, with
    // the rest reported as cache hits — even without an external
    // cache.
    const auto topo = ClusterTopology::paperCluster(8);
    const CostModel cost(topo, profileModels(topo));
    const CompGraph g = buildTransformerBlock(opt6p7b(), 8);

    DpOptions opts;
    const DpResult r = SegmentedDpOptimizer(g, cost, opts).optimize();
    EXPECT_LT(r.catalogsBuilt, g.numNodes());
    EXPECT_GE(r.catalogCacheHits, 2);
    EXPECT_EQ(r.catalogsBuilt + r.catalogCacheHits, g.numNodes());
}

TEST(CatalogCacheLru, EvictsColdSegmentsUnderBudgetPressure)
{
    // Regression: the segment store used to be insert-only — once the
    // byte budget filled, every later key was silently refused
    // forever, so a long-lived plan server degraded to cold DP for
    // all new workloads. Now LRU entries make room and hot keys stay.
    auto mkSegment = [](int n) {
        auto s = std::make_shared<DpSegment>();
        s->C = Mat(n, n, 1.0);
        return s;
    };
    const std::size_t one = mkSegment(16)->bytes();

    CatalogCache cache;
    MetricsRegistry metrics;
    cache.setMetrics(&metrics);
    cache.setSegmentByteBudget(4 * one);
    for (int i = 0; i < 4; ++i)
        cache.insertSegment("seg" + std::to_string(i), mkSegment(16));
    EXPECT_EQ(cache.segmentBytes(), 4 * one);

    // Keep seg0 hot, then overflow: the cold seg1 goes, not seg0.
    EXPECT_NE(cache.findSegment("seg0"), nullptr);
    cache.insertSegment("seg4", mkSegment(16));
    EXPECT_EQ(cache.segmentEvictions(), 1u);
    EXPECT_EQ(metrics.counter("planner.cache_evicted"), 1);
    EXPECT_NE(cache.findSegment("seg0"), nullptr)
        << "hot key evicted";
    EXPECT_NE(cache.findSegment("seg4"), nullptr)
        << "key arriving after the cap was hit was not cached";
    EXPECT_EQ(cache.findSegment("seg1"), nullptr)
        << "LRU victim still resident";
    EXPECT_LE(cache.segmentBytes(), 4 * one);

    // A segment alone bigger than the budget is rejected, not stored,
    // and evicts nothing.
    const std::size_t before = cache.segmentBytes();
    const auto big = mkSegment(64);
    EXPECT_EQ(cache.insertSegment("huge", big), big);
    EXPECT_EQ(cache.segmentRejections(), 1u);
    EXPECT_EQ(metrics.counter("planner.cache_rejected"), 1);
    EXPECT_EQ(cache.findSegment("huge"), nullptr);
    EXPECT_EQ(cache.segmentBytes(), before);

    // Shrinking the budget evicts immediately, oldest first.
    cache.setSegmentByteBudget(one);
    EXPECT_LE(cache.segmentBytes(), one);
    EXPECT_NE(cache.findSegment("seg4"), nullptr)
        << "most recent key should survive the shrink";
}

TEST(SegmentedDp, CatalogCachePersistsAcrossRuns)
{
    SmallFixture f;
    const auto cache = std::make_shared<CatalogCache>();
    DpOptions opts;
    opts.catalogCache = cache;

    const DpResult first =
        SegmentedDpOptimizer(f.graph, f.cost, opts).optimize();
    EXPECT_GT(first.catalogsBuilt, 0);
    const std::size_t resident = cache->size();
    EXPECT_EQ(resident, static_cast<std::size_t>(first.catalogsBuilt));

    // Second run: every node is served from the cache...
    const DpResult second =
        SegmentedDpOptimizer(f.graph, f.cost, opts).optimize();
    EXPECT_EQ(second.catalogsBuilt, 0);
    EXPECT_EQ(second.catalogCacheHits, f.graph.numNodes());
    EXPECT_EQ(cache->size(), resident);
    EXPECT_EQ(second.strategies, first.strategies);
    EXPECT_EQ(second.layerCost, first.layerCost);

    // ...and bruteForceOptimize shares the same store.
    const std::size_t hits_before = cache->hits();
    const DpResult bf = bruteForceOptimize(f.graph, f.cost, opts.space,
                                           cache.get(), 2);
    EXPECT_EQ(bf.catalogsBuilt, 0);
    EXPECT_GT(cache->hits(), hits_before);
    EXPECT_NEAR(bf.layerCost, first.layerCost,
                1e-6 * std::max(1.0, first.layerCost));

    // A different space is a different key: nothing aliases.
    DpOptions conv = opts;
    conv.space.allowPSquare = false;
    const DpResult spatial =
        SegmentedDpOptimizer(f.graph, f.cost, conv).optimize();
    EXPECT_GT(spatial.catalogsBuilt, 0);
    EXPECT_GT(cache->size(), resident);
}

TEST(SegmentedDp, ParallelEdgesSummedViaEdgeIndex)
{
    // Two edges between the same node pair (both add inputs fed by
    // node 0) exercise the multi-table accumulation behind the
    // (src, dst) edge index; the DP must still match brute force.
    const auto topo = ClusterTopology::paperCluster(4);
    const CostModel cost(topo, profileModels(topo));

    CompGraph g;
    g.addNode(makeElementwiseOp("input", {"B", "M", "H"},
                                {8, 256, 1024}, 0.0));
    g.addNode(makeAddOp("sum", {"B", "M", "H"}, {8, 256, 1024}));
    g.addEdge(0, 1, 0, {0, 1, 2});
    g.addEdge(0, 1, 1, {0, 1, 2});

    DpOptions opts;
    const DpResult dp = SegmentedDpOptimizer(g, cost, opts).optimize();
    const DpResult bf = bruteForceOptimize(g, cost, opts.space);
    EXPECT_NEAR(dp.layerCost, bf.layerCost,
                1e-6 * std::max(1.0, bf.layerCost));
    EXPECT_EQ(dp.strategies.size(), 2u);
}

TEST(SegmentedDp, ReportsPhaseTimings)
{
    SmallFixture f;
    DpOptions opts;
    const DpResult r =
        SegmentedDpOptimizer(f.graph, f.cost, opts).optimize();
    EXPECT_GT(r.catalogMs, 0.0);
    EXPECT_GT(r.edgeTableMs, 0.0);
    EXPECT_GT(r.dpMs, 0.0);
    EXPECT_LE(r.catalogMs + r.edgeTableMs + r.dpMs,
              r.optimizationMs + 1e-6);
}

TEST(Baselines, MegatronStrategiesMatchHandRules)
{
    const CompGraph g = buildTransformerBlock(opt6p7b(), 8);
    const auto strat = megatronStrategies(g, {2, 4});
    ASSERT_TRUE(strat.has_value());
    ASSERT_EQ(strat->size(), 13u);

    const TransformerBlockIndex idx;
    // QKV: batch then column (K twice).
    EXPECT_EQ((*strat)[idx.qkv].toString(g.node(idx.qkv)), "B,K,K");
    // Out-proj: row.
    EXPECT_EQ((*strat)[idx.outProj].toString(g.node(idx.outProj)),
              "B,N,N");
    // Attention matmuls: heads.
    EXPECT_EQ((*strat)[idx.qk].toString(g.node(idx.qk)), "B,Hd,Hd");
    // fc1 column, fc2 row.
    EXPECT_EQ((*strat)[idx.fc1].toString(g.node(idx.fc1)), "B,K,K");
    EXPECT_EQ((*strat)[idx.fc2].toString(g.node(idx.fc2)), "B,N,N");
    // gelu aligns with fc1's column split.
    EXPECT_EQ((*strat)[idx.activation].toString(
                  g.node(idx.activation)),
              "B,F,F");
}

TEST(Baselines, InfeasibleConfigRejected)
{
    // d = 16 > batch 8 cannot split the batch dimension.
    const CompGraph g = buildTransformerBlock(opt6p7b(), 8);
    EXPECT_FALSE(megatronStrategies(g, {16, 2}).has_value());
}

TEST(Baselines, BestMegatronPlanPicksFeasibleOptimum)
{
    const auto topo = ClusterTopology::paperCluster(8);
    const CostModel cost(topo, profileModels(topo));
    const CompGraph g = buildTransformerBlock(opt6p7b(), 8);
    const MegatronPlan plan = bestMegatronPlan(g, cost);
    EXPECT_EQ(plan.config.dataParallel * plan.config.modelParallel, 8);
    EXPECT_GT(plan.cost, 0.0);
}

TEST(Baselines, AlpaNeverUsesPSquareAndPrimeParWins)
{
    const auto topo = ClusterTopology::paperCluster(4);
    const CostModel cost(topo, profileModels(topo));
    const CompGraph g = buildMlpBlock(opt175b(), 8);

    const DpResult alpa = alpaOptimize(g, cost);
    for (const auto &seq : alpa.strategies)
        EXPECT_FALSE(seq.hasPSquare());

    DpOptions opts;
    const DpResult pp = SegmentedDpOptimizer(g, cost, opts).optimize();
    EXPECT_LE(pp.layerCost, alpa.layerCost + 1e-9);
}

TEST(SegmentedDp, ReplanForSurvivorsShrinksTheGrid)
{
    ModelConfig cfg = opt6p7b();
    cfg.seqLength = 512;
    const CompGraph g = buildMlpBlock(cfg, 8);

    // The recovery entry: plan for 4 devices, then for the 2 survivors
    // of a failure. Both must be complete, valid plans for their grid.
    for (const int devices : {4, 2}) {
        const DpResult res = replanForSurvivors(g, devices);
        ASSERT_EQ(static_cast<int>(res.strategies.size()),
                  g.numNodes());
        for (int n = 0; n < g.numNodes(); ++n) {
            EXPECT_EQ(res.strategies[n].numBits(),
                      devices == 4 ? 2 : 1);
            EXPECT_EQ(res.strategies[n].validate(g.node(n)), "");
        }
        EXPECT_GT(res.layerCost, 0.0);
    }

    // Matches planning directly on the equivalent cluster.
    const auto topo = ClusterTopology::paperCluster(2);
    const CostModel cost(topo, profileModels(topo));
    DpOptions opts;
    const DpResult direct = SegmentedDpOptimizer(g, cost, opts).optimize();
    const DpResult via = replanForSurvivors(g, 2);
    EXPECT_EQ(via.strategies, direct.strategies);
    EXPECT_DOUBLE_EQ(via.layerCost, direct.layerCost);
}

// ---------------------------------------------------------------------
// Dominance pruning (DESIGN.md Sec. 11): the pruned planner must be an
// exact drop-in for the exhaustive one wherever the latter is
// tractable — same strategies, bit-identical costs.

/** Run one graph with pruning on and off and demand byte identity.
 *  @p expect_drops: demand the filter actually discarded sequences
 *  (false for configs whose stacked upper bound keeps the whole
 *  space — still exact, just not faster). */
void
expectPrunedParity(const CompGraph &g, const CostModel &cost,
                   DpOptions opts, bool expect_drops = true)
{
    opts.pruneDominated = true;
    const DpResult pruned = SegmentedDpOptimizer(g, cost, opts).optimize();
    opts.pruneDominated = false;
    const DpResult full = SegmentedDpOptimizer(g, cost, opts).optimize();

    EXPECT_EQ(pruned.strategies, full.strategies);
    EXPECT_EQ(pruned.layerCost, full.layerCost); // bitwise, not NEAR
    EXPECT_EQ(pruned.totalCost, full.totalCost);
    EXPECT_FALSE(pruned.truncated);
    EXPECT_EQ(pruned.gapPct, 0.0);
    EXPECT_EQ(pruned.lowerBoundUs, pruned.layerCost);
    // The speed must come from actually dropping something.
    if (expect_drops) {
        EXPECT_LT(pruned.candidatesKept, pruned.candidatesTotal);
    }
}

TEST(Pruning, ParityOnMlpChain)
{
    SmallFixture f;
    DpOptions opts;
    expectPrunedParity(f.graph, f.cost, opts);
}

TEST(Pruning, ParityOnTransformerBlockWithSkipEdges)
{
    const auto topo = ClusterTopology::paperCluster(4);
    const CostModel cost(topo, profileModels(topo));
    ModelConfig cfg = opt6p7b();
    cfg.seqLength = 512;
    const CompGraph g = buildTransformerBlock(cfg, 8);
    DpOptions opts;
    expectPrunedParity(g, cost, opts);
}

TEST(Pruning, ParityOnStackedLayersAndEightDevices)
{
    const auto topo = ClusterTopology::paperCluster(8);
    const CostModel cost(topo, profileModels(topo));
    ModelConfig cfg = opt6p7b();
    cfg.seqLength = 512;
    const CompGraph g = buildMlpBlock(cfg, 8);
    DpOptions opts;
    opts.numLayers = 24; // stacked merge path
    // The stacked bound (totalCost + (L-1) * hmax) / L is loose on a
    // graph this small — everything survives, and that is the point:
    // exactness never depends on the filter biting.
    expectPrunedParity(g, cost, opts, /*expect_drops=*/false);
}

TEST(Pruning, ParityOnConventionalSpace)
{
    // A space whose optimum has zero inter-operator cost: the pilot
    // upper bound equals the sum of per-node minima exactly, so the
    // slack filter runs at its floating-point boundary (regression
    // guard for over-pruning the optimum itself).
    SmallFixture f;
    DpOptions opts;
    opts.space.allowPSquare = false;
    expectPrunedParity(f.graph, f.cost, opts);
}

TEST(Pruning, DeterministicAcrossThreadCounts)
{
    SmallFixture f;
    DpOptions opts;
    opts.numLayers = 12;
    opts.numThreads = 1;
    const DpResult one =
        SegmentedDpOptimizer(f.graph, f.cost, opts).optimize();
    for (const int threads : {2, 4}) {
        opts.numThreads = threads;
        const DpResult many =
            SegmentedDpOptimizer(f.graph, f.cost, opts).optimize();
        EXPECT_EQ(many.strategies, one.strategies);
        EXPECT_EQ(many.layerCost, one.layerCost);
        EXPECT_EQ(many.totalCost, one.totalCost);
    }
}

TEST(Pruning, BeamReportsGapOnlyWhenTruncating)
{
    SmallFixture f;
    DpOptions exact;
    const DpResult full =
        SegmentedDpOptimizer(f.graph, f.cost, exact).optimize();

    // A beam wide enough to hold the whole space truncates nothing
    // and must certify optimality.
    DpOptions wide = exact;
    wide.beamWidth = 100000;
    const DpResult w =
        SegmentedDpOptimizer(f.graph, f.cost, wide).optimize();
    EXPECT_FALSE(w.truncated);
    EXPECT_EQ(w.gapPct, 0.0);
    EXPECT_EQ(w.layerCost, full.layerCost);
    EXPECT_EQ(w.strategies, full.strategies);

    // A tiny beam truncates; the result carries a certified bound
    // that really contains the exhaustive optimum.
    DpOptions narrow = exact;
    narrow.beamWidth = 2;
    const DpResult n =
        SegmentedDpOptimizer(f.graph, f.cost, narrow).optimize();
    ASSERT_TRUE(n.truncated);
    EXPECT_GE(n.layerCost, full.layerCost);
    EXPECT_LE(n.lowerBoundUs, full.layerCost + 1e-9);
    EXPECT_GE(n.gapPct, 0.0);
    if (n.layerCost > full.layerCost) {
        EXPECT_GT(n.gapPct, 0.0);
    }
}

TEST(Pruning, PlanAndSegmentStoresServeRepeatRuns)
{
    // 8-device MLP with stacked layers: the stacked upper bound keeps
    // every candidate, so two runs with different layer counts share
    // identical survivor lists — the precondition for a segment-store
    // hit under a different plan key.
    const auto topo = ClusterTopology::paperCluster(8);
    const CostModel cost(topo, profileModels(topo));
    ModelConfig cfg = opt6p7b();
    cfg.seqLength = 512;
    const CompGraph g = buildMlpBlock(cfg, 8);

    const auto cache = std::make_shared<CatalogCache>();
    DpOptions opts;
    opts.catalogCache = cache;
    opts.numLayers = 24;

    const DpResult first =
        SegmentedDpOptimizer(g, cost, opts).optimize();
    EXPECT_FALSE(first.planCacheHit);

    // Identical run: the whole plan comes out of the plan store.
    const DpResult again =
        SegmentedDpOptimizer(g, cost, opts).optimize();
    EXPECT_TRUE(again.planCacheHit);
    EXPECT_EQ(again.strategies, first.strategies);
    EXPECT_EQ(again.layerCost, first.layerCost);
    EXPECT_EQ(again.totalCost, first.totalCost);

    // Different layer count: a different plan key, but the segment
    // structure and survivors are unchanged, so Bellman work is
    // served per segment.
    DpOptions other = opts;
    other.numLayers = 12;
    const DpResult seg =
        SegmentedDpOptimizer(g, cost, other).optimize();
    EXPECT_FALSE(seg.planCacheHit);
    EXPECT_GT(seg.segmentCacheHits, 0);
    EXPECT_EQ(seg.layerCost, first.layerCost);
    EXPECT_EQ(seg.strategies, first.strategies);
}

TEST(Pruning, MetricsRegistryReceivesPlannerCounters)
{
    SmallFixture f;
    MetricsRegistry metrics;
    DpOptions opts;
    opts.metrics = &metrics;
    const DpResult r =
        SegmentedDpOptimizer(f.graph, f.cost, opts).optimize();
    EXPECT_EQ(metrics.counter("planner.candidates_total"),
              r.candidatesTotal);
    EXPECT_EQ(metrics.counter("planner.candidates_kept"),
              r.candidatesKept);
    EXPECT_EQ(metrics.counter("planner.states_pruned"), r.statesPruned);
    EXPECT_EQ(metrics.counter("planner.plan_cache_hits"), 0);
}

} // namespace
} // namespace primepar
