/**
 * @file
 * Unit tests for the support library (bits, regression, table,
 * parallel).
 */

#include <atomic>
#include <clocale>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "support/bits.hh"
#include "support/json.hh"
#include "support/parallel.hh"
#include "support/regression.hh"
#include "support/rng.hh"
#include "support/table.hh"

namespace primepar {
namespace {

TEST(Bits, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(-4));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(Bits, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0);
    EXPECT_EQ(log2Exact(2), 1);
    EXPECT_EQ(log2Exact(32), 5);
    EXPECT_EQ(log2Exact(1 << 20), 20);
}

TEST(Bits, PositiveMod)
{
    EXPECT_EQ(positiveMod(5, 4), 1);
    EXPECT_EQ(positiveMod(-1, 4), 3);
    EXPECT_EQ(positiveMod(-4, 4), 0);
    EXPECT_EQ(positiveMod(-5, 4), 3);
    EXPECT_EQ(positiveMod(0, 7), 0);
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(0, 5), 0);
}

TEST(Regression, ExactLine)
{
    // y = 3 + 2x must be recovered exactly.
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys{5, 7, 9, 11, 13};
    const LinearModel m = fitLinear(xs, ys);
    EXPECT_NEAR(m.intercept, 3.0, 1e-9);
    EXPECT_NEAR(m.slope, 2.0, 1e-9);
    EXPECT_NEAR(rSquared(m, xs, ys), 1.0, 1e-12);
}

TEST(Regression, NoisyLineHighR2)
{
    Rng rng(7);
    std::vector<double> xs, ys;
    for (int i = 1; i <= 50; ++i) {
        xs.push_back(i * 100.0);
        ys.push_back(10.0 + 0.5 * i * 100.0 + rng.uniform(-1.0f, 1.0f));
    }
    const LinearModel m = fitLinear(xs, ys);
    EXPECT_NEAR(m.slope, 0.5, 1e-2);
    EXPECT_GT(rSquared(m, xs, ys), 0.999);
}

TEST(Regression, DegenerateSingleX)
{
    std::vector<double> xs{4, 4, 4};
    std::vector<double> ys{1, 2, 3};
    const LinearModel m = fitLinear(xs, ys);
    EXPECT_NEAR(m.slope, 0.0, 1e-12);
    EXPECT_NEAR(m.intercept, 2.0, 1e-12);
}

TEST(Regression, ClampsNegativePredictions)
{
    LinearModel m{-5.0, 1.0};
    EXPECT_EQ(m(1.0), 0.0);
    EXPECT_NEAR(m(10.0), 5.0, 1e-12);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.uniform(-2.0f, 3.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t;
    t.header({"model", "gpus", "speedup"});
    t.row({"OPT 175B", "32", "1.68"});
    t.row({"Llama2 7B", "4", "1.16"});
    const std::string s = t.render();
    EXPECT_NE(s.find("model"), std::string::npos);
    EXPECT_NE(s.find("OPT 175B"), std::string::npos);
    EXPECT_NE(s.find("1.68"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(Parallel, ResolveNumThreads)
{
    EXPECT_GE(resolveNumThreads(0), 1);
    EXPECT_EQ(resolveNumThreads(0), hardwareConcurrency());
    EXPECT_EQ(resolveNumThreads(3), 3);
    EXPECT_EQ(resolveNumThreads(-2), hardwareConcurrency());
}

TEST(Parallel, ParallelForCoversEveryIndexOnce)
{
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.numThreads(), threads);
        std::vector<std::atomic<int>> counts(1000);
        pool.parallelFor(counts.size(),
                         [&](std::size_t i) { counts[i]++; });
        for (const auto &c : counts)
            EXPECT_EQ(c.load(), 1);
    }
}

TEST(Parallel, ResultsIdenticalAcrossThreadCounts)
{
    // One output slot per index: any thread count computes the same
    // values (the planner's determinism contract).
    const auto run = [](int threads) {
        ThreadPool pool(threads);
        std::vector<double> out(257);
        pool.parallelFor(out.size(), [&](std::size_t i) {
            double v = 0.0;
            for (std::size_t j = 0; j <= i; ++j)
                v += 1.0 / (1.0 + static_cast<double>(j));
            out[i] = v;
        });
        return out;
    };
    const auto serial = run(1);
    EXPECT_EQ(serial, run(4));
    EXPECT_EQ(serial, run(16));
}

TEST(Parallel, EmptyAndSingleRanges)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(Parallel, NestedCallsRunInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(64);
    pool.parallelFor(8, [&](std::size_t outer) {
        pool.parallelFor(8, [&](std::size_t inner) {
            counts[outer * 8 + inner]++;
        });
    });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, PropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    // The pool survives a throwing loop.
    std::atomic<int> ok{0};
    pool.parallelFor(10, [&](std::size_t) { ok++; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(Parallel, NullPoolHelperRunsSerially)
{
    std::vector<int> order;
    parallelFor(nullptr, 5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    std::vector<int> expect(5);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

// ---------------------------------------------------------------------------
// JSON numbers

namespace {

const double kTrickyDoubles[] = {
    0.0,     1.5,        -2.75,         3.14159265358979312,
    0.1,     1.0 / 3.0,  40766.2,       -6.02214076e23,
    1e-300,  9.3e9,      1234567890.5,  5e-324 /* min subnormal */,
};

/** Serialize and reparse every tricky double, requiring bit-exact
 *  round trips and a '.' (never a locale ',') decimal separator. */
void
expectExactNumberRoundTrip()
{
    for (const double v : kTrickyDoubles) {
        const std::string text = JsonValue(v).toString(0);
        EXPECT_EQ(text.find(','), std::string::npos)
            << "locale-dependent separator in " << text;
        const double back = parseJson(text).asNumber();
        EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
            << text << " reparsed as a different double";
    }
}

/**
 * Activate a ',' decimal-separator locale, compiling one into a
 * scratch directory via localedef (LOCPATH) when the host image has
 * none installed. Returns the empty string when no such locale can be
 * produced.
 */
std::string
activateCommaLocale()
{
    const char *candidates[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                                "it_IT.UTF-8"};
    for (const char *name : candidates) {
        if (std::setlocale(LC_ALL, name) &&
            *std::localeconv()->decimal_point == ',')
            return name;
    }
    char dir[] = "/tmp/primepar_locale_XXXXXX";
    if (!::mkdtemp(dir))
        return "";
    const std::string cmd =
        std::string("localedef --no-archive -i de_DE -f UTF-8 ") + dir +
        "/de_DE.UTF-8 > /dev/null 2>&1";
    if (std::system(cmd.c_str()) != 0)
        return "";
    ::setenv("LOCPATH", dir, 1);
    if (std::setlocale(LC_ALL, "de_DE.UTF-8") &&
        *std::localeconv()->decimal_point == ',')
        return "de_DE.UTF-8";
    return "";
}

} // namespace

TEST(Json, NumberRoundTripIsExact)
{
    expectExactNumberRoundTrip();
    // Integral doubles print as integers.
    EXPECT_EQ(JsonValue(32.0).toString(0), "32");
    // A comma is never a number separator on the way in either.
    EXPECT_THROW(parseJson("1,5"), JsonError);
}

TEST(Json, NumbersSurviveCommaDecimalLocale)
{
    // Regression: number I/O used snprintf("%.17g") and std::stod,
    // both locale-sensitive — under de_DE the writer emitted "3,14"
    // (corrupting metrics snapshots, calibration files, and the plan
    // store) and the parser silently truncated "1.5" at the '.'.
    const std::string loc = activateCommaLocale();
    if (loc.empty())
        GTEST_SKIP() << "no comma-decimal locale available and "
                        "localedef could not build one";
    struct LocaleGuard
    {
        ~LocaleGuard() { std::setlocale(LC_ALL, "C"); }
    } guard;

    ASSERT_EQ(*std::localeconv()->decimal_point, ',')
        << loc << " did not take effect";
    expectExactNumberRoundTrip();
    // The exact de_DE failure modes, spelled out:
    EXPECT_EQ(JsonValue(3.14).toString(0).find(','),
              std::string::npos);
    EXPECT_DOUBLE_EQ(parseJson("1.5").asNumber(), 1.5);
    const JsonValue arr = parseJson("[1.5, -0.25e2]");
    EXPECT_DOUBLE_EQ(arr.items()[0].asNumber(), 1.5);
    EXPECT_DOUBLE_EQ(arr.items()[1].asNumber(), -25.0);
}

} // namespace
} // namespace primepar
