/**
 * @file
 * Tests of the derived communication schedules against the paper's
 * Table 1 closed forms, plus structural properties (ring bijection,
 * group confinement, accumulator migration).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "partition/comm_pattern.hh"
#include "partition/dsi.hh"
#include "partition/op_spec.hh"
#include "partition/space.hh"
#include "support/bits.hh"

namespace primepar {
namespace {

std::int64_t
deviceFromRC(int k, std::int64_t r, std::int64_t c)
{
    std::int64_t linear = 0;
    for (int j = 0; j < k; ++j) {
        const std::int64_t rb = (r >> (k - 1 - j)) & 1;
        const std::int64_t cb = (c >> (k - 1 - j)) & 1;
        linear = (linear << 2) | (rb << 1) | cb;
    }
    return linear;
}

/** Find the sender of @p tensor_name for @p receiver in a shift list;
 *  -1 if the receiver gets nothing. */
std::int64_t
senderOf(const OpSpec &op, const std::vector<ShiftSet> &shifts,
         const std::string &tensor_name, std::int64_t receiver)
{
    for (const auto &set : shifts) {
        if (op.refName(set.tensor) != tensor_name)
            continue;
        for (const auto &tr : set.transfers) {
            if (tr.receiver == receiver)
                return tr.sender;
        }
    }
    return -1;
}

class Table1Test : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        k = GetParam();
        side = 1 << k;
        op = makeLinearOp("fc", 4, 64, 64, 64);
        seq = PartitionSeq({PartitionStep::pSquare(k)});
        dsi = std::make_unique<DsiTable>(op, seq, 2 * k);
    }

    std::int64_t
    rc(std::int64_t r, std::int64_t c) const
    {
        return deviceFromRC(k, positiveMod(r, side), positiveMod(c, side));
    }

    int k = 1;
    std::int64_t side = 2;
    OpSpec op;
    PartitionSeq seq;
    std::unique_ptr<DsiTable> dsi;
};

TEST_P(Table1Test, ForwardRow)
{
    // Forward, t < 2^k - 1: I from (r, c+1), W from (r+1, c).
    const PassComm comm = derivePassComm(op, seq, *dsi, 0);
    ASSERT_EQ(static_cast<std::int64_t>(comm.stepShifts.size()), side);
    for (std::int64_t t = 0; t + 1 < side; ++t) {
        for (std::int64_t r = 0; r < side; ++r) {
            for (std::int64_t c = 0; c < side; ++c) {
                EXPECT_EQ(senderOf(op, comm.stepShifts[t], "I", rc(r, c)),
                          rc(r, c + 1))
                    << "I t=" << t << " r=" << r << " c=" << c;
                EXPECT_EQ(senderOf(op, comm.stepShifts[t], "W", rc(r, c)),
                          rc(r + 1, c))
                    << "W t=" << t;
            }
        }
    }
    // No communication in the final forward step.
    EXPECT_TRUE(comm.stepShifts[side - 1].empty());
    // Output blocks are fixed: no accumulator migration.
    for (const auto &acc : comm.accShifts)
        EXPECT_TRUE(acc.empty());
    EXPECT_FALSE(comm.allReduce.has_value());
}

TEST_P(Table1Test, BackwardRows)
{
    // Backward, t < 2^k - 1: dO from (r, c+1), W from (r-1, c+1);
    // t = 2^k - 1: W from (r, c+1) (realignment for next Forward).
    const PassComm comm = derivePassComm(op, seq, *dsi, 1);
    for (std::int64_t t = 0; t + 1 < side; ++t) {
        for (std::int64_t r = 0; r < side; ++r) {
            for (std::int64_t c = 0; c < side; ++c) {
                EXPECT_EQ(senderOf(op, comm.stepShifts[t], "dO", rc(r, c)),
                          rc(r, c + 1))
                    << "dO t=" << t;
                EXPECT_EQ(senderOf(op, comm.stepShifts[t], "W", rc(r, c)),
                          rc(r - 1, c + 1))
                    << "W t=" << t;
            }
        }
    }
    for (std::int64_t r = 0; r < side; ++r) {
        for (std::int64_t c = 0; c < side; ++c) {
            EXPECT_EQ(
                senderOf(op, comm.stepShifts[side - 1], "W", rc(r, c)),
                rc(r, c + 1))
                << "W transition";
        }
    }
    EXPECT_FALSE(comm.allReduce.has_value());
}

TEST_P(Table1Test, GradientRows)
{
    // Gradient, t < 2^k - 2: I from (r+1, c-1), dO from (r+1, c);
    // t = 2^k - 2: I from (r+1, c), dO from (r+1, c+1);
    // t = 2^k - 1: dW (accumulator) from (r, c+1).
    const PassComm comm = derivePassComm(op, seq, *dsi, 2);
    for (std::int64_t t = 0; t + 2 < side; ++t) {
        for (std::int64_t r = 0; r < side; ++r) {
            for (std::int64_t c = 0; c < side; ++c) {
                EXPECT_EQ(senderOf(op, comm.stepShifts[t], "I", rc(r, c)),
                          rc(r + 1, c - 1))
                    << "I t=" << t;
                EXPECT_EQ(senderOf(op, comm.stepShifts[t], "dO", rc(r, c)),
                          rc(r + 1, c))
                    << "dO t=" << t;
            }
        }
    }
    const std::int64_t t2 = side - 2;
    for (std::int64_t r = 0; r < side; ++r) {
        for (std::int64_t c = 0; c < side; ++c) {
            EXPECT_EQ(senderOf(op, comm.stepShifts[t2], "I", rc(r, c)),
                      rc(r + 1, c))
                << "I t=2^k-2";
            EXPECT_EQ(senderOf(op, comm.stepShifts[t2], "dO", rc(r, c)),
                      rc(r + 1, c + 1))
                << "dO t=2^k-2";
            // dW migrates between steps 2^k-2 and 2^k-1.
            EXPECT_EQ(senderOf(op, comm.accShifts[t2], "dW", rc(r, c)),
                      rc(r, c + 1))
                << "dW accumulator";
        }
    }
    // No accumulator migration before the delta flip.
    for (std::int64_t t = 0; t + 2 < side; ++t)
        EXPECT_TRUE(comm.accShifts[t].empty());
    EXPECT_FALSE(comm.allReduce.has_value());
}

TEST_P(Table1Test, ShiftsAreRingPermutations)
{
    // Within every shift set, senders are a permutation of receivers
    // (each device sends exactly once) — the ring property.
    for (int pass = 0; pass < 3; ++pass) {
        const PassComm comm = derivePassComm(op, seq, *dsi, pass);
        auto check = [&](const std::vector<ShiftSet> &shifts) {
            for (const auto &set : shifts) {
                if (set.transfers.empty())
                    continue;
                std::set<std::int64_t> receivers, senders;
                for (const auto &tr : set.transfers) {
                    receivers.insert(tr.receiver);
                    senders.insert(tr.sender);
                    EXPECT_NE(tr.receiver, tr.sender);
                }
                EXPECT_EQ(receivers, senders);
            }
        };
        for (const auto &s : comm.stepShifts)
            check(s);
        for (const auto &s : comm.accShifts)
            check(s);
    }
}

TEST_P(Table1Test, TransferElementCounts)
{
    const PassComm comm = derivePassComm(op, seq, *dsi, 0);
    for (const auto &set : comm.stepShifts[0]) {
        const std::string name = op.refName(set.tensor);
        if (name == "I") {
            // I[B,M,N] slice: 4 x (64/2^k) x (64/2^k).
            EXPECT_EQ(set.elementsPerTransfer,
                      4 * (64 / side) * (64 / side));
        } else if (name == "W") {
            EXPECT_EQ(set.elementsPerTransfer,
                      (64 / side) * (64 / side));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllK, Table1Test, ::testing::Values(1, 2, 3));

TEST(CommPattern, RingConfinedToPSquareGroup)
{
    // B,P2x2 over 8 devices: the batch bit (d1) splits devices into
    // {0..3} and {4..7}; ring traffic must stay within each half.
    const OpSpec op = makeLinearOp("fc", 8, 32, 32, 32);
    PartitionSeq seq({PartitionStep::byDim(0), PartitionStep::pSquare(1)});
    DsiTable dsi(op, seq, 3);
    for (int pass = 0; pass < 3; ++pass) {
        const PassComm comm = derivePassComm(op, seq, dsi, pass);
        for (const auto &step : comm.stepShifts) {
            for (const auto &set : step) {
                for (const auto &tr : set.transfers)
                    EXPECT_EQ(tr.receiver / 4, tr.sender / 4);
            }
        }
    }
}

TEST(CommPattern, NoShiftsWithoutPSquare)
{
    const OpSpec op = makeLinearOp("fc", 8, 32, 32, 32);
    PartitionSeq seq({PartitionStep::byDim(2), PartitionStep::byDim(3)});
    DsiTable dsi(op, seq, 2);
    for (int pass = 0; pass < 3; ++pass) {
        const PassComm comm = derivePassComm(op, seq, dsi, pass);
        ASSERT_EQ(comm.stepShifts.size(), 1u);
        EXPECT_TRUE(comm.stepShifts[0].empty());
        EXPECT_TRUE(comm.accShifts[0].empty());
    }
}

TEST(CommPattern, RowColumnAllReduceGroups)
{
    // N,K partition over 4 devices: Forward all-reduces O across the
    // N bit (d1); Backward all-reduces dI across the K bit (d2).
    const OpSpec op = makeLinearOp("fc", 8, 32, 32, 32);
    PartitionSeq seq({PartitionStep::byDim(2), PartitionStep::byDim(3)});
    DsiTable dsi(op, seq, 2);

    const auto fwd = derivePassComm(op, seq, dsi, 0);
    ASSERT_TRUE(fwd.allReduce.has_value());
    EXPECT_EQ(fwd.allReduce->indicator, (GroupIndicator{0}));
    EXPECT_EQ(fwd.allReduce->groups.size(), 2u);

    const auto bwd = derivePassComm(op, seq, dsi, 1);
    ASSERT_TRUE(bwd.allReduce.has_value());
    EXPECT_EQ(bwd.allReduce->indicator, (GroupIndicator{1}));

    // Gradient contracts B and M, neither partitioned: no all-reduce.
    EXPECT_FALSE(derivePassComm(op, seq, dsi, 2).allReduce.has_value());
}

TEST(CommPattern, ReplicationFactors)
{
    const OpSpec op = makeLinearOp("fc", 8, 32, 32, 32);
    // Partition M twice: W replicated across all 4 devices.
    PartitionSeq seq({PartitionStep::byDim(1), PartitionStep::byDim(1)});
    DsiTable dsi(op, seq, 2);
    EXPECT_EQ(replicationFactor(op, dsi, {1, false}, Phase::Forward, 0),
              4);
    EXPECT_EQ(replicationFactor(op, dsi, {0, false}, Phase::Forward, 0),
              1);
}

TEST(CommPattern, TensorFootprintBits)
{
    const OpSpec op = makeLinearOp("fc", 8, 32, 32, 32);
    PartitionSeq seq({PartitionStep::byDim(0), PartitionStep::byDim(2)});
    DsiTable dsi(op, seq, 2);
    // W[N,K]: only the N bit (position 1) matters.
    EXPECT_EQ(tensorFootprintBits(op, dsi, {1, false}, Phase::Forward),
              (GroupIndicator{1}));
    // I[B,M,N]: both bits.
    EXPECT_EQ(tensorFootprintBits(op, dsi, {0, false}, Phase::Forward),
              (GroupIndicator{0, 1}));
}

TEST(CommPattern, TransitionShiftIdentityWithoutPSquare)
{
    const OpSpec op = makeLinearOp("fc", 8, 32, 32, 32);
    PartitionSeq seq({PartitionStep::byDim(3)});
    DsiTable dsi(op, seq, 1);
    const auto shift = deriveTransitionShift(
        op, seq, dsi, {1, false}, Phase::Backward, Phase::Forward);
    EXPECT_TRUE(shift.transfers.empty());
}

} // namespace
} // namespace primepar
