/**
 * @file
 * Distributed-runtime tests, two layers:
 *
 *  - In-process units: DistWorld placement / JSON round-trip, the wire
 *    frame codec over a real loopback socket (including truncation and
 *    garbage detection), and malformed-world errors.
 *
 *  - Process-level scenarios (labelled `dist` in CMake, with a hard
 *    timeout): the test forks the real `primepar_worker` binary — a
 *    coordinator plus N workers on localhost — and asserts on the
 *    coordinator's printed per-step losses. Covers the two acceptance
 *    criteria: TCP lockstep is bit-identical to the in-process
 *    transport, and a worker killed mid-run degrades the job onto the
 *    survivors (re-plan + checkpoint restore) instead of failing it.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>

#include "runtime/errors.hh"
#include "runtime/fault.hh"
#include "runtime/net.hh"
#include "runtime/tcp_transport.hh"
#include "support/json.hh"

#ifndef PRIMEPAR_WORKER_BIN
#error "PRIMEPAR_WORKER_BIN must point at the primepar_worker binary"
#endif

namespace primepar {
namespace {

// ---------------------------------------------------------------------------
// DistWorld units

TEST(DistWorld, PlacesDevicesContiguously)
{
    std::vector<WorkerInfo> workers(3);
    for (int i = 0; i < 3; ++i)
        workers[static_cast<std::size_t>(i)].worker = i;
    DistWorld::placeDevices(workers, 3); // 8 devices over 3 workers

    EXPECT_EQ(workers[0].firstDevice, 0);
    std::int64_t total = 0;
    for (std::size_t i = 0; i < workers.size(); ++i) {
        EXPECT_GT(workers[i].numDevices, 0);
        if (i > 0) {
            EXPECT_EQ(workers[i].firstDevice,
                      workers[i - 1].firstDevice +
                          workers[i - 1].numDevices);
        }
        total += workers[i].numDevices;
    }
    EXPECT_EQ(total, 8);

    DistWorld w;
    w.numBits = 3;
    w.workers = workers;
    for (std::int64_t d = 0; d < 8; ++d) {
        const std::int64_t owner = w.ownerOf(d);
        ASSERT_GE(owner, 0) << "device " << d;
        const WorkerInfo *info = w.find(owner);
        ASSERT_NE(info, nullptr);
        EXPECT_GE(d, info->firstDevice);
        EXPECT_LT(d, info->firstDevice + info->numDevices);
    }
    EXPECT_EQ(w.ownerOf(8), -1);
    EXPECT_EQ(w.ownerOf(-1), -1);
}

TEST(DistWorld, JsonRoundTripsAndRejectsMalformedDocs)
{
    DistWorld w;
    w.generation = 3;
    w.numBits = 2;
    w.workers.resize(2);
    w.workers[0] = {0, "127.0.0.1", 1111, 0, 2};
    w.workers[1] = {5, "127.0.0.1", 2222, 2, 2};

    const DistWorld got = DistWorld::fromJson(w.toJson());
    EXPECT_EQ(got.generation, 3u);
    EXPECT_EQ(got.numBits, 2);
    ASSERT_EQ(got.workers.size(), 2u);
    EXPECT_EQ(got.workers[1].worker, 5);
    EXPECT_EQ(got.workers[1].port, 2222);
    EXPECT_EQ(got.workers[1].firstDevice, 2);

    EXPECT_THROW(DistWorld::fromJson(parseJson("{}")), InputError);
    EXPECT_THROW(DistWorld::fromJson(parseJson("[1,2]")), InputError);
    EXPECT_THROW(
        DistWorld::fromJson(parseJson(
            "{\"generation\":0,\"bits\":1,\"workers\":[{}]}")),
        InputError);
}

// ---------------------------------------------------------------------------
// Frame codec over a real loopback connection

struct LoopbackPair
{
    LoopbackPair()
    {
        listener.open(0);
        a = netConnect("127.0.0.1", listener.port(), 2000);
        b = listener.accept(2000);
        EXPECT_TRUE(a.valid());
        EXPECT_TRUE(b.valid());
    }
    NetListener listener;
    NetSocket a, b;
};

TEST(WireFrame, RoundTripsAllHeaderFieldsAndPayload)
{
    LoopbackPair io;
    WireFrame f;
    f.type = FrameType::Data;
    f.status = FrameStatus::Ok;
    f.generation = 7;
    f.seq = 123456789;
    f.trainStep = 42;
    f.phase = 2;
    f.temporalStep = 9;
    f.sender = 3;
    f.receiver = 1;
    f.channel = "ring";
    f.tensor = "attn.QK^T";
    f.payload = {1, 2, 3, 250, 251, 252};
    f.checksum = checksumBytes(f.payload.data(), f.payload.size());

    ASSERT_EQ(writeFrame(io.a, f), IoResult::Ok);
    WireFrame got;
    ASSERT_EQ(readFrame(io.b, got, 2000), IoResult::Ok);
    EXPECT_EQ(got.type, FrameType::Data);
    EXPECT_EQ(got.generation, 7u);
    EXPECT_EQ(got.seq, 123456789u);
    EXPECT_EQ(got.trainStep, 42);
    EXPECT_EQ(got.phase, 2u);
    EXPECT_EQ(got.temporalStep, 9u);
    EXPECT_EQ(got.sender, 3);
    EXPECT_EQ(got.receiver, 1);
    EXPECT_EQ(got.channel, "ring");
    EXPECT_EQ(got.tensor, "attn.QK^T");
    EXPECT_EQ(got.payload, f.payload);
    EXPECT_EQ(got.checksum, f.checksum);
    EXPECT_EQ(checksumBytes(got.payload.data(), got.payload.size()),
              got.checksum);
}

TEST(WireFrame, TruncatedFrameIsDetectedNeverConsumed)
{
    // A frame cut mid-payload (the NetTruncate fault) followed by the
    // connection closing must surface as Closed / Timeout — the reader
    // must never deliver a partial frame as if it were complete.
    LoopbackPair io;
    WireFrame f;
    f.payload.assign(1024, 0xab);
    f.checksum = checksumBytes(f.payload.data(), f.payload.size());
    const std::vector<std::uint8_t> encoded = encodeFrame(f);
    // A truncated write never reports success.
    EXPECT_NE(writeFrame(io.a, f, 2000,
                         static_cast<std::int64_t>(encoded.size() / 2)),
              IoResult::Ok);
    io.a.close();
    WireFrame got;
    const IoResult r = readFrame(io.b, got, 2000);
    EXPECT_NE(r, IoResult::Ok);
}

TEST(WireFrame, WriteToStalledPeerTimesOutInsteadOfHanging)
{
    // Regression: writeExact used to ignore the caller's deadline —
    // on EAGAIN it polled 1000 ms and looped forever, so a peer that
    // stopped draining its receive buffer could hang a coordinator
    // heartbeat or worker send indefinitely. The peer here never
    // reads: once the kernel buffers fill, the write must report
    // Timeout within the deadline.
    LoopbackPair io;
    const int small = 8 * 1024;
    ::setsockopt(io.a.fd(), SOL_SOCKET, SO_SNDBUF, &small,
                 sizeof(small));
    ::setsockopt(io.b.fd(), SOL_SOCKET, SO_RCVBUF, &small,
                 sizeof(small));

    WireFrame f;
    f.payload.assign(64 * 1024 * 1024, 0x5a); // dwarfs both buffers
    f.checksum = checksumBytes(f.payload.data(), f.payload.size());

    const auto t0 = std::chrono::steady_clock::now();
    const IoResult r = writeFrame(io.a, f, 300);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(r, IoResult::Timeout);
    EXPECT_GE(elapsed_ms, 250);
    EXPECT_LT(elapsed_ms, 5000) << "deadline was not honored";
}

TEST(WireFrame, GarbageBytesAreMalformedNotAFrame)
{
    LoopbackPair io;
    std::vector<std::uint8_t> junk(96, 0x58); // 'X', wrong magic
    ASSERT_EQ(::send(io.a.fd(), junk.data(), junk.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(junk.size()));
    WireFrame got;
    EXPECT_EQ(readFrame(io.b, got, 2000), IoResult::Malformed);
}

// ---------------------------------------------------------------------------
// Process-level scenarios: coordinator + workers on localhost

struct JobResult
{
    int rc = -1;
    std::string out;
};

/** Launch `primepar_worker --serve <args>` plus @p numWorkers workers
 *  on its ephemeral port; stream and return the coordinator output.
 *  @p onLine (optional) sees every coordinator output line as it
 *  arrives, with the control port — the re-join test uses it to
 *  launch a late worker the moment a loss is reported. */
JobResult
runJob(const std::string &serveArgs, int numWorkers,
       const std::string &dir,
       const std::function<void(const std::string &, int)> &onLine =
           {})
{
    const std::string cmd = std::string(PRIMEPAR_WORKER_BIN) +
                            " --serve " + serveArgs + " 2>&1";
    FILE *coord = popen(cmd.c_str(), "r");
    if (!coord) {
        ADD_FAILURE() << "cannot launch coordinator";
        return {};
    }
    JobResult result;
    char line[1024];
    int port = -1;
    while (std::fgets(line, sizeof line, coord)) {
        result.out += line;
        if (std::sscanf(line, "PRIMEPAR_COORD_PORT=%d", &port) == 1)
            break;
    }
    if (port <= 0) {
        ADD_FAILURE() << "no PRIMEPAR_COORD_PORT line:\n"
                      << result.out;
        pclose(coord);
        return {};
    }
    for (int w = 0; w < numWorkers; ++w) {
        const std::string wcmd =
            std::string(PRIMEPAR_WORKER_BIN) +
            " --connect 127.0.0.1:" + std::to_string(port) + " > " +
            dir + "/worker" + std::to_string(w) + ".log 2>&1 &";
        if (std::system(wcmd.c_str()) != 0)
            ADD_FAILURE() << "cannot launch worker " << w;
    }
    while (std::fgets(line, sizeof line, coord)) {
        result.out += line;
        if (onLine)
            onLine(line, port);
    }
    const int status = pclose(coord);
    result.rc = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

/** The coordinator's authoritative per-step loss lines, verbatim. */
std::vector<std::string>
finalLossLines(const std::string &out)
{
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < out.size()) {
        std::size_t end = out.find('\n', pos);
        if (end == std::string::npos)
            end = out.size();
        const std::string l = out.substr(pos, end - pos);
        if (l.rfind("final step ", 0) == 0)
            lines.push_back(l);
        pos = end + 1;
    }
    return lines;
}

std::string
freshDir(const char *name)
{
    const std::string dir = testing::TempDir() + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

const char *kTinyJob = "--devices 4 --steps 3 --batch 2 --hidden 16 "
                       "--heads 2 --ffn 32 --seq 8";

TEST(DistJob, TcpLockstepIsBitIdenticalToInProcess)
{
    const std::string dir = freshDir("dist_bitident");
    // One worker owns everything -> plain InProcessTransport; two
    // workers really cross TCP for every cut transfer. The printed
    // %.17g losses must match to the last bit.
    const JobResult solo =
        runJob(std::string("--workers 1 ") + kTinyJob, 1, dir);
    const JobResult duo =
        runJob(std::string("--workers 2 ") + kTinyJob, 2, dir);
    EXPECT_EQ(solo.rc, 0) << solo.out;
    EXPECT_EQ(duo.rc, 0) << duo.out;
    const auto ref = finalLossLines(solo.out);
    const auto got = finalLossLines(duo.out);
    ASSERT_EQ(ref.size(), 3u) << solo.out;
    EXPECT_EQ(got, ref) << "TCP losses diverge from in-process:\n"
                        << duo.out;
}

TEST(DistJob, SurvivesInjectedSocketFaultsBitIdentically)
{
    const std::string dir = freshDir("dist_netfaults");
    const JobResult clean =
        runJob(std::string("--workers 1 ") + kTinyJob, 1, dir);
    const JobResult faulty = runJob(
        std::string("--workers 2 ") + kTinyJob +
            " --fault-spec netdrop=0.05,nettrunc=0.03,netdelay=0.05,"
            "seed=5",
        2, dir);
    EXPECT_EQ(clean.rc, 0) << clean.out;
    EXPECT_EQ(faulty.rc, 0) << faulty.out;
    EXPECT_EQ(finalLossLines(faulty.out), finalLossLines(clean.out))
        << "socket faults changed the trajectory:\n"
        << faulty.out;
}

TEST(DistJob, ShardedIsBitIdenticalToReplicated)
{
    const std::string dir = freshDir("dist_sharded");
    // Sharded is the default: each worker materializes tensor data
    // only for its owned ranks and all-gathers the rest over the
    // codec-exempt "gather" channel. The %.17g losses must match
    // full lockstep replication to the last bit.
    const JobResult sharded =
        runJob(std::string("--workers 2 ") + kTinyJob, 2, dir);
    const JobResult replicated = runJob(
        std::string("--workers 2 --replicated ") + kTinyJob, 2, dir);
    EXPECT_EQ(sharded.rc, 0) << sharded.out;
    EXPECT_EQ(replicated.rc, 0) << replicated.out;
    const auto ref = finalLossLines(replicated.out);
    ASSERT_EQ(ref.size(), 3u) << replicated.out;
    EXPECT_EQ(finalLossLines(sharded.out), ref)
        << "sharded losses diverge from replicated:\n"
        << sharded.out;
}

TEST(DistJob, ShardedSurvivesSocketFaultsBitIdentically)
{
    const std::string dir = freshDir("dist_sharded_faults");
    const char *faults = " --fault-spec netdrop=0.05,nettrunc=0.03,"
                         "netdelay=0.05,seed=11";
    const JobResult replicated = runJob(
        std::string("--workers 2 --replicated ") + kTinyJob, 2, dir);
    const JobResult faulty = runJob(
        std::string("--workers 2 ") + kTinyJob + faults, 2, dir);
    EXPECT_EQ(replicated.rc, 0) << replicated.out;
    EXPECT_EQ(faulty.rc, 0) << faulty.out;
    EXPECT_EQ(finalLossLines(faulty.out),
              finalLossLines(replicated.out))
        << "socket faults changed the sharded trajectory:\n"
        << faulty.out;
}

TEST(DistJob, WorkerKillMidRunDegradesOntoSurvivors)
{
    const std::string dir = freshDir("dist_kill");
    const std::string ckDir = freshDir("dist_kill_ck");
    // Worker 1 exits abruptly (the kill fault calls _Exit) at step 2;
    // worker 0 must escalate the dead connection, get the re-planned
    // world from the coordinator, restore its checkpoint, and finish
    // all 5 steps alone.
    const JobResult job = runJob(
        std::string("--workers 2 --devices 4 --steps 5 --batch 2 "
                    "--hidden 16 --heads 2 --ffn 32 --seq 8 "
                    "--fault-spec kill@step=2:dev=1 "
                    "--checkpoint-every 1 --checkpoint-dir ") +
            ckDir,
        2, dir);
    EXPECT_EQ(job.rc, 0) << job.out;
    EXPECT_EQ(finalLossLines(job.out).size(), 5u) << job.out;
    EXPECT_NE(job.out.find("1 worker(s) lost"), std::string::npos)
        << job.out;
    EXPECT_NE(job.out.find("generation 1"), std::string::npos)
        << job.out;
}

TEST(DistJob, KillRejoinResumesWithLossParity)
{
    const std::string dir = freshDir("dist_rejoin");
    const std::string ckDir = freshDir("dist_rejoin_ck");
    const std::string ck2Dir = freshDir("dist_rejoin_ck2");
    const long long steps = 30;
    const std::string jobArgs =
        "--devices 4 --steps 30 --batch 2 --hidden 16 --heads 2 "
        "--ffn 32 --seq 8 --seed 77 --heartbeat-ms 50";

    // Worker 2 is killed at step 2; the survivors degrade onto 2^1
    // devices and keep training. The moment the coordinator reports
    // the loss, a fourth worker connects — it must be folded back in:
    // survivors pause at the barrier step R, the grid grows back to
    // 2^2, and the rejoiner restores a survivor's step-R checkpoint.
    bool launched = false;
    const JobResult job = runJob(
        std::string("--workers 3 ") + jobArgs +
            " --fault-spec kill@step=2:dev=2 --checkpoint-every 1"
            " --checkpoint-dir " +
            ckDir,
        3, dir, [&](const std::string &l, int port) {
            if (launched || l.find(" lost (") == std::string::npos)
                return;
            launched = true;
            const std::string wcmd =
                std::string(PRIMEPAR_WORKER_BIN) +
                " --connect 127.0.0.1:" + std::to_string(port) +
                " > " + dir + "/worker3.log 2>&1 &";
            if (std::system(wcmd.c_str()) != 0)
                ADD_FAILURE() << "cannot launch rejoin worker";
        });
    EXPECT_TRUE(launched) << job.out;
    EXPECT_EQ(job.rc, 0) << job.out;
    EXPECT_NE(job.out.find("re-joined"), std::string::npos) << job.out;
    ASSERT_EQ(finalLossLines(job.out).size(),
              static_cast<std::size_t>(steps))
        << job.out;

    // The resume barrier R, from the coordinator's re-join line.
    const std::size_t rpos = job.out.find("resuming at step ");
    ASSERT_NE(rpos, std::string::npos) << job.out;
    const long long r = std::atoll(
        job.out.c_str() + rpos + std::strlen("resuming at step "));
    ASSERT_GT(r, 0) << job.out;
    ASSERT_LT(r, steps) << job.out;

    // Reference: an undisturbed single-worker job restored from the
    // very checkpoint snapshot the rejoiner adopted (worker 0 is
    // always the donor — the lowest-id survivor). Its steps R..29
    // must match the re-joined run's bit for bit.
    {
        std::ifstream src(ckDir + "/worker0.ckpt.s" +
                              std::to_string(r),
                          std::ios::binary);
        ASSERT_TRUE(src.good()) << "donor snapshot missing";
        std::ofstream dst(ck2Dir + "/worker0.ckpt",
                          std::ios::binary);
        dst << src.rdbuf();
    }
    const JobResult ref = runJob(
        std::string("--workers 1 --resume ") + jobArgs +
            " --checkpoint-dir " + ck2Dir,
        1, dir);
    EXPECT_EQ(ref.rc, 0) << ref.out;

    auto fromStep = [](const std::vector<std::string> &lines,
                       long long first) {
        std::vector<std::string> keep;
        for (const std::string &l : lines) {
            long long s = -1;
            if (std::sscanf(l.c_str(), "final step %lld", &s) == 1 &&
                s >= first)
                keep.push_back(l);
        }
        return keep;
    };
    const auto want = finalLossLines(ref.out);
    ASSERT_EQ(want.size(), static_cast<std::size_t>(steps - r))
        << ref.out;
    EXPECT_EQ(fromStep(finalLossLines(job.out), r), want)
        << "re-joined run diverges from the undisturbed resume:\n"
        << job.out;
}

} // namespace
} // namespace primepar
