/**
 * @file
 * Serving-layer tests: the PPS1 persistent plan store (round-trip,
 * corruption detection, kill -9 crash safety), the PlanService
 * request flow (store hits, single-flight coalescing, admission), and
 * the daemon + client loopback protocol.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/plan_client.hh"
#include "serve/plan_server.hh"
#include "serve/plan_service.hh"
#include "serve/plan_store.hh"
#include "serve/serve_protocol.hh"

#include "runtime/errors.hh"
#include "runtime/metrics.hh"

using namespace primepar;

namespace {

/** Fresh scratch directory per test. */
std::string
scratchDir()
{
    char tmpl[] = "/tmp/primepar_serve_test.XXXXXX";
    const char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

PlanCacheEntry
sampleEntry(double seed)
{
    PlanCacheEntry entry;
    PartitionSeq a;
    a.push(PartitionStep::byDim(0));
    a.push(PartitionStep::byDim(2));
    PartitionSeq b;
    b.push(PartitionStep::pSquare(1));
    b.push(PartitionStep::byDim(1));
    entry.strategies = {a, b};
    // Deliberately awkward doubles: the store must round-trip bits,
    // not decimal renderings.
    entry.layerCost = seed + 0.1;
    entry.totalCost = seed * 3.0 + 1e-7;
    entry.lowerBoundUs = seed / 3.0;
    entry.gapPct = 1.0 / 81.0;
    entry.candidatesTotal = 123456789012345;
    entry.candidatesKept = 42;
    entry.truncated = true;
    return entry;
}

void
expectSameEntry(const PlanCacheEntry &x, const PlanCacheEntry &y)
{
    EXPECT_EQ(x.strategies, y.strategies);
    EXPECT_EQ(0, std::memcmp(&x.layerCost, &y.layerCost,
                             sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&x.totalCost, &y.totalCost,
                             sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&x.lowerBoundUs, &y.lowerBoundUs,
                             sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&x.gapPct, &y.gapPct, sizeof(double)));
    EXPECT_EQ(x.candidatesTotal, y.candidatesTotal);
    EXPECT_EQ(x.candidatesKept, y.candidatesKept);
    EXPECT_EQ(x.truncated, y.truncated);
}

} // namespace

TEST(PlanStore, RoundTripsEntriesBitExactly)
{
    const std::string path = scratchDir() + "/plans.pps";
    PlanStoreBuilder builder;
    builder.put("key-a", sampleEntry(1.0));
    builder.put("key-b", sampleEntry(2.5));
    PlanCacheEntry empty; // no strategies at all must also survive
    builder.put("key-empty", empty);
    std::string error;
    ASSERT_TRUE(builder.save(path, 7, &error)) << error;

    const PlanStore store = PlanStore::load(path, &error);
    ASSERT_TRUE(store.valid()) << error;
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.generation(), 7u);

    const auto a = store.find("key-a");
    ASSERT_NE(a, nullptr);
    expectSameEntry(*a, sampleEntry(1.0));
    const auto b = store.find("key-b");
    ASSERT_NE(b, nullptr);
    expectSameEntry(*b, sampleEntry(2.5));
    const auto e = store.find("key-empty");
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->strategies.empty());
    EXPECT_EQ(store.find("key-missing"), nullptr);

    // entries() must reproduce everything (the merge-rewrite path).
    EXPECT_EQ(store.entries().size(), 3u);
}

TEST(PlanStore, IdenticalContentsSerializeToIdenticalBytes)
{
    PlanStoreBuilder one, two;
    // Insertion order must not matter: keys are sorted on write.
    one.put("alpha", sampleEntry(1.0));
    one.put("beta", sampleEntry(2.0));
    two.put("beta", sampleEntry(2.0));
    two.put("alpha", sampleEntry(1.0));
    EXPECT_EQ(one.serialize(3), two.serialize(3));
}

TEST(PlanStore, MissingFileLoadsAsEmptyFirstBootStore)
{
    std::string error;
    const PlanStore store =
        PlanStore::load(scratchDir() + "/never-written.pps", &error);
    EXPECT_TRUE(store.valid()) << error;
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.generation(), 0u);
}

TEST(PlanStore, DetectsCorruptionTruncationAndBadMagic)
{
    const std::string dir = scratchDir();
    const std::string path = dir + "/plans.pps";
    PlanStoreBuilder builder;
    builder.put("key-a", sampleEntry(1.0));
    std::string error;
    ASSERT_TRUE(builder.save(path, 1, &error)) << error;
    std::ifstream in(path, std::ios::binary);
    std::vector<char> image((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();

    auto writeVariant = [&](const std::vector<char> &bytes) {
        const std::string p = dir + "/variant.pps";
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        return p;
    };

    // One flipped payload byte: the checksum must catch it.
    std::vector<char> corrupt = image;
    corrupt[corrupt.size() - 9] ^= 0x40;
    EXPECT_FALSE(PlanStore::load(writeVariant(corrupt), &error)
                     .valid());
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;

    // A file cut mid-record must be rejected, not misread.
    std::vector<char> truncated(image.begin(),
                                image.begin() + image.size() / 2);
    EXPECT_FALSE(PlanStore::load(writeVariant(truncated), &error)
                     .valid());
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;

    // Wrong magic: not a PPS1 file at all.
    std::vector<char> badMagic = image;
    badMagic[0] = 'X';
    EXPECT_FALSE(PlanStore::load(writeVariant(badMagic), &error)
                     .valid());
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    // Future format version: refuse, name both versions.
    std::vector<char> badVersion = image;
    badVersion[4] = 99;
    EXPECT_FALSE(PlanStore::load(writeVariant(badVersion), &error)
                     .valid());
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

// kill -9 at an arbitrary point of a rewrite must leave a loadable
// store: either the previous generation or a complete new one —
// never a torn file. The child rewrites the store as fast as it can;
// the parent kills it mid-flight and then loads whatever survived.
TEST(PlanStore, SigkillMidSaveLeavesLoadableStore)
{
    const std::string path = scratchDir() + "/plans.pps";
    PlanStoreBuilder builder;
    for (int i = 0; i < 64; ++i)
        builder.put("key-" + std::to_string(i),
                    sampleEntry(static_cast<double>(i)));
    std::string error;
    ASSERT_TRUE(builder.save(path, 1, &error)) << error;

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: rewrite the store in a hot loop until killed.
        for (std::uint64_t gen = 2;; ++gen)
            builder.save(path, gen, nullptr);
    }
    usleep(20 * 1000); // let several rewrites (and one mid-write) run
    ASSERT_EQ(kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));

    const PlanStore store = PlanStore::load(path, &error);
    ASSERT_TRUE(store.valid()) << error;
    EXPECT_EQ(store.size(), 64u);
    EXPECT_GE(store.generation(), 1u);
    const auto entry = store.find("key-13");
    ASSERT_NE(entry, nullptr);
    expectSameEntry(*entry, sampleEntry(13.0));
}

TEST(ServeProtocol, RequestAndResponseRoundTripThroughJson)
{
    PlanRequest req;
    req.model = "OPT 6.7B";
    req.devices = 64;
    req.batch = 16;
    req.layers = 3;
    req.alpha = 0.25;
    req.psquare = false;
    req.batchDim = false;
    req.beamWidth = 12;
    req.maxTemporalSteps = 4;
    const PlanRequest back = PlanRequest::fromJson(req.toJson());
    EXPECT_EQ(back.model, req.model);
    EXPECT_EQ(back.devices, req.devices);
    EXPECT_EQ(back.batch, req.batch);
    EXPECT_EQ(back.layers, req.layers);
    EXPECT_EQ(back.alpha, req.alpha);
    EXPECT_EQ(back.psquare, req.psquare);
    EXPECT_EQ(back.batchDim, req.batchDim);
    EXPECT_EQ(back.beamWidth, req.beamWidth);
    EXPECT_EQ(back.maxTemporalSteps, req.maxTemporalSteps);

    PlanResponse resp;
    resp.ok = true;
    resp.source = "store";
    PartitionSeq seq;
    seq.push(PartitionStep::byDim(1));
    seq.push(PartitionStep::pSquare(2));
    resp.strategies = {seq};
    resp.strategyText = {"M,P4x4"};
    resp.layerCostUs = 1234.5;
    resp.totalCostUs = 98765.4321;
    resp.gapPct = 0.5;
    resp.truncated = true;
    resp.serverUs = 42.0;
    const PlanResponse rback = PlanResponse::fromJson(resp.toJson());
    EXPECT_TRUE(rback.ok);
    EXPECT_EQ(rback.source, "store");
    EXPECT_EQ(rback.strategies, resp.strategies);
    EXPECT_EQ(rback.strategyText, resp.strategyText);
    EXPECT_EQ(rback.layerCostUs, resp.layerCostUs);
    EXPECT_EQ(rback.totalCostUs, resp.totalCostUs);
    EXPECT_TRUE(rback.truncated);
}

TEST(ServeProtocol, ValidateRejectsMalformedRequests)
{
    PlanRequest req;
    req.devices = 3;
    EXPECT_THROW(req.validate(), InputError);
    req.devices = 8;
    req.model = "No Such Model 1T";
    EXPECT_THROW(req.validate(), InputError);
    req.model = "OPT 6.7B";
    req.maxTemporalSteps = 3;
    EXPECT_THROW(req.validate(), InputError);
    req.maxTemporalSteps = 4;
    EXPECT_NO_THROW(req.validate());
}

namespace {

PlanRequest
tinyRequest()
{
    PlanRequest req;
    req.model = "Llama2 7B";
    req.devices = 2;
    req.batch = 2;
    req.layers = 2;
    return req;
}

} // namespace

TEST(PlanService, PersistsPlansAcrossServiceInstances)
{
    const std::string path = scratchDir() + "/plans.pps";
    PlanServiceOptions opts;
    opts.storePath = path;

    PlanResponse cold;
    {
        PlanService service(opts);
        cold = service.plan(tinyRequest());
        ASSERT_TRUE(cold.ok) << cold.error;
        EXPECT_EQ(cold.source, "dp");
        // Same instance, same key: the in-process layers answer now.
        const PlanResponse again = service.plan(tinyRequest());
        ASSERT_TRUE(again.ok);
        EXPECT_EQ(again.source, "store");
    }

    // A brand-new service knows the plan only through the mmap'd file.
    PlanService fresh(opts);
    EXPECT_EQ(fresh.storeSize(), 1u);
    const PlanResponse warm = fresh.plan(tinyRequest());
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm.source, "store");
    EXPECT_EQ(warm.strategies, cold.strategies);
    EXPECT_EQ(0, std::memcmp(&warm.layerCostUs, &cold.layerCostUs,
                             sizeof(double)));
    EXPECT_EQ(0, std::memcmp(&warm.totalCostUs, &cold.totalCostUs,
                             sizeof(double)));
}

// The single-flight core: many threads asking for the same key must
// cost exactly one DP run, and every waiter must get the identical
// plan. Distinct keys each get their own run, throttled through the
// admission slots.
TEST(PlanService, SingleFlightCoalescesIdenticalConcurrentRequests)
{
    const std::string path = scratchDir() + "/plans.pps";
    PlanServiceOptions opts;
    opts.storePath = path;
    opts.dpSlots = 1; // also exercises admission under contention
    PlanService service(opts);

    constexpr int kSameKey = 6;
    constexpr int kDistinct = 2;
    std::vector<PlanResponse> same(kSameKey);
    std::vector<PlanResponse> distinct(kDistinct);
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int i = 0; i < kSameKey; ++i) {
        threads.emplace_back([&, i] {
            ++ready;
            while (!go.load())
                std::this_thread::yield();
            same[i] = service.plan(tinyRequest());
        });
    }
    for (int i = 0; i < kDistinct; ++i) {
        threads.emplace_back([&, i] {
            ++ready;
            while (!go.load())
                std::this_thread::yield();
            PlanRequest req = tinyRequest();
            req.batch = 4 << i; // a different cache key per thread
            distinct[i] = service.plan(req);
        });
    }
    while (ready.load() < kSameKey + kDistinct)
        std::this_thread::yield();
    go = true;
    for (std::thread &t : threads)
        t.join();

    for (const PlanResponse &r : same) {
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.strategies, same[0].strategies);
        EXPECT_EQ(0,
                  std::memcmp(&r.layerCostUs, &same[0].layerCostUs,
                              sizeof(double)));
    }
    for (const PlanResponse &r : distinct)
        ASSERT_TRUE(r.ok) << r.error;

    // Exactly one DP per unique key: 1 shared + kDistinct.
    MetricsRegistry &metrics = service.metricsRegistry();
    EXPECT_EQ(metrics.counter("serve.dp_runs"), 1 + kDistinct);
    EXPECT_EQ(metrics.counter("serve.requests"),
              kSameKey + kDistinct);
    EXPECT_EQ(metrics.counter("serve.errors"), 0);
    // The store now holds every unique plan.
    EXPECT_EQ(service.storeSize(),
              static_cast<std::size_t>(1 + kDistinct));
}

TEST(PlanService, InvalidRequestsFailCleanlyWithoutTakingTheService)
{
    PlanServiceOptions opts; // no store: in-memory only
    PlanService service(opts);
    PlanRequest bad = tinyRequest();
    bad.devices = 6;
    const PlanResponse resp = service.plan(bad);
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("power of two"), std::string::npos)
        << resp.error;
    EXPECT_EQ(service.metricsRegistry().counter("serve.errors"), 1);
    // The service still answers good requests afterwards.
    const PlanResponse good = service.plan(tinyRequest());
    EXPECT_TRUE(good.ok) << good.error;
}

TEST(PlanServer, ServesPlansStatsAndShutdownOverLoopback)
{
    const std::string path = scratchDir() + "/plans.pps";
    PlanServerOptions opts;
    opts.service.storePath = path;
    PlanServer server(opts);
    ASSERT_GT(server.port(), 0);

    PlanClient client("127.0.0.1", server.port());
    EXPECT_TRUE(client.ping());

    const PlanResponse cold = client.plan(tinyRequest());
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(cold.source, "dp");

    // Second identical request: answered from the persistent store,
    // bit-identical to the cold plan.
    const PlanResponse warm = client.plan(tinyRequest());
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm.source, "store");
    EXPECT_EQ(warm.strategies, cold.strategies);

    // A malformed request comes back as a clean refusal.
    PlanRequest bad = tinyRequest();
    bad.devices = 5;
    const PlanResponse refused = client.plan(bad);
    EXPECT_FALSE(refused.ok);
    EXPECT_FALSE(refused.error.empty());

    // Stats carry the serve counters and the latency histogram.
    const JsonValue stats = client.stats();
    const JsonValue &counters = stats.at("counters");
    EXPECT_EQ(counters.at("serve.requests").asNumber(), 3);
    EXPECT_EQ(counters.at("serve.store_hits").asNumber(), 1);
    EXPECT_EQ(counters.at("serve.dp_runs").asNumber(), 1);
    EXPECT_NE(stats.at("histograms").find("serve.request_us"),
              nullptr);
    EXPECT_EQ(stats.at("plan_store").at("entries").asNumber(), 1);

    // A second client sees the same daemon (and shuts it down).
    PlanClient other("127.0.0.1", server.port());
    EXPECT_TRUE(other.shutdown());
    EXPECT_TRUE(server.waitForShutdown(5000));
    server.stop();
}
