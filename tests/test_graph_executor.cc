/**
 * @file
 * Graph-level functional equivalence: whole multi-operator graphs —
 * up to the complete Fig. 6 transformer block with QKV splits, head
 * reshapes and residual gradient accumulation — execute partitioned
 * and must match both a hand-composed reference and single-device
 * execution exactly.
 */

#include <gtest/gtest.h>

#include "baselines/megatron.hh"
#include "runtime/graph_executor.hh"
#include "runtime/transformer_runtime.hh"
#include "tensor/ops.hh"

namespace primepar {
namespace {

/** Tiny model shape for functional tests. */
ModelConfig
tinyModel()
{
    ModelConfig cfg;
    cfg.name = "tiny";
    cfg.hiddenSize = 8;
    cfg.numHeads = 2;
    cfg.ffnSize = 16;
    cfg.seqLength = 4;
    cfg.numLayers = 1;
    return cfg;
}

TEST(GraphExecutor, MlpChainMatchesHandReference)
{
    ModelConfig cfg = tinyModel();
    const std::int64_t b = 2;
    const CompGraph g = buildMlpBlock(cfg, b);

    Rng rng(31);
    GraphIO io;
    io.input = Tensor::random(Shape{b, cfg.seqLength, cfg.hiddenSize},
                              rng);
    io.params = randomBlockParams(g, rng);
    io.d_output = Tensor::random(
        Shape{b, cfg.seqLength, cfg.hiddenSize}, rng);

    // Hand reference. The MLP block uses relu.
    const Tensor &w1 = io.params.at("fc1.W");
    const Tensor &w2 = io.params.at("fc2.W");
    const Tensor h1 = linearForward(io.input, w1);
    const Tensor h2 = relu(h1);
    const Tensor y = linearForward(h2, w2);
    const Tensor dh2 = linearBackward(io.d_output, w2);
    const Tensor dw2 = linearGradient(h2, io.d_output);
    const Tensor dh1 = reluBackward(h1, dh2);
    const Tensor dx = linearBackward(dh1, w1);
    const Tensor dw1 = linearGradient(io.input, dh1);

    // Several partitioned executions over 4 devices.
    const std::vector<std::vector<PartitionSeq>> plans = {
        // Megatron column/row.
        {PartitionSeq({PartitionStep::byDim(0), PartitionStep::byDim(3)}),
         PartitionSeq({PartitionStep::byDim(0), PartitionStep::byDim(2)}),
         PartitionSeq({PartitionStep::byDim(0), PartitionStep::byDim(2)})},
        // Spatial-temporal on both linears.
        {PartitionSeq({PartitionStep::pSquare(1)}),
         PartitionSeq({PartitionStep::byDim(1), PartitionStep::byDim(2)}),
         PartitionSeq({PartitionStep::pSquare(1)})},
    };
    for (const auto &plan : plans) {
        SpmdGraphExecutor exec(g, plan, 2);
        const GraphResult got = exec.run(io);
        EXPECT_TRUE(got.output.allClose(y, 1e-3f, 1e-4f));
        EXPECT_TRUE(got.d_input.allClose(dx, 1e-3f, 1e-4f));
        EXPECT_TRUE(got.d_params.at("fc1.W").allClose(dw1, 1e-3f, 1e-4f));
        EXPECT_TRUE(got.d_params.at("fc2.W").allClose(dw2, 1e-3f, 1e-4f));
    }
}

/** Hand-composed forward pass of the full transformer block. */
Tensor
blockForwardReference(const ModelConfig &cfg, const GraphIO &io)
{
    const std::int64_t b = io.input.dim(0);
    const std::int64_t s = cfg.seqLength;
    const std::int64_t h = cfg.hiddenSize;
    const std::int64_t heads = cfg.numHeads;
    const std::int64_t e = cfg.headEmbed();

    const Tensor beta(Shape{h});
    const Tensor ln1 =
        layerNormForward(io.input, io.params.at("ln1.G"), beta).output;
    const Tensor qkv = linearForward(ln1, io.params.at("qkv.W"));
    auto split = [&](int third) {
        return qkv.narrow(2, third * h, h)
            .reshape({b, s, heads, e})
            .permute({0, 2, 1, 3});
    };
    const Tensor q = split(0), k = split(1), v = split(2);
    const Tensor scores = batchedMatmul(q, k, false, true);
    const Tensor probs = softmaxLastDim(scores);
    const Tensor ctx = batchedMatmul(probs, v);
    const Tensor merged =
        ctx.permute({0, 2, 1, 3}).reshape({b, s, h});
    const Tensor attn =
        linearForward(merged, io.params.at("out_proj.W"));
    const Tensor res1 = addTensors(attn, io.input);
    const Tensor ln2 =
        layerNormForward(res1, io.params.at("ln2.G"), beta).output;
    const Tensor f1 = linearForward(ln2, io.params.at("fc1.W"));
    const Tensor act = gelu(f1);
    const Tensor f2 = linearForward(act, io.params.at("fc2.W"));
    return addTensors(f2, res1);
}

struct BlockFixture
{
    BlockFixture() : cfg(tinyModel()), graph(buildTransformerBlock(cfg, 2))
    {
        Rng rng(47);
        io.input = Tensor::random(Shape{2, cfg.seqLength, cfg.hiddenSize},
                                  rng);
        io.params = randomBlockParams(graph, rng);
        io.d_output = Tensor::random(
            Shape{2, cfg.seqLength, cfg.hiddenSize}, rng);
    }

    SpmdGraphExecutor
    makeExec(const std::vector<PartitionSeq> &plan, int bits)
    {
        SpmdGraphExecutor exec(graph, plan, bits);
        installTransformerBlockTransforms(exec, cfg, 2);
        return exec;
    }

    ModelConfig cfg;
    CompGraph graph;
    GraphIO io;
};

TEST(GraphExecutor, FullBlockForwardMatchesHandReference)
{
    BlockFixture f;
    // Single emulated device: checks the graph wiring itself.
    std::vector<PartitionSeq> trivial(f.graph.numNodes());
    SpmdGraphExecutor exec = f.makeExec(trivial, 0);
    const GraphResult got = exec.run(f.io);
    const Tensor expect = blockForwardReference(f.cfg, f.io);
    EXPECT_TRUE(got.output.allClose(expect, 1e-3f, 1e-4f))
        << "max diff " << got.output.maxAbsDiff(expect);
}

TEST(GraphExecutor, FullBlockPartitionedMatchesSingleDevice)
{
    BlockFixture f;

    // Reference: single device through the same machinery.
    std::vector<PartitionSeq> trivial(f.graph.numNodes());
    SpmdGraphExecutor ref_exec = f.makeExec(trivial, 0);
    const GraphResult ref = ref_exec.run(f.io);

    // Megatron (d=2, m=2) over 4 devices.
    const auto megatron = megatronStrategies(f.graph, {2, 2});
    ASSERT_TRUE(megatron.has_value());
    SpmdGraphExecutor exec = f.makeExec(*megatron, 2);
    const GraphResult got = exec.run(f.io);

    EXPECT_TRUE(got.output.allClose(ref.output, 1e-3f, 1e-4f))
        << "max diff " << got.output.maxAbsDiff(ref.output);
    EXPECT_TRUE(got.d_input.allClose(ref.d_input, 1e-3f, 1e-4f))
        << "max diff " << got.d_input.maxAbsDiff(ref.d_input);
    for (const auto &[name, grad] : ref.d_params) {
        ASSERT_TRUE(got.d_params.count(name)) << name;
        EXPECT_TRUE(got.d_params.at(name).allClose(grad, 1e-3f, 1e-4f))
            << name << " max diff "
            << got.d_params.at(name).maxAbsDiff(grad);
    }
}

TEST(GraphExecutor, FullBlockWithPSquareLinears)
{
    BlockFixture f;
    std::vector<PartitionSeq> trivial(f.graph.numNodes());
    SpmdGraphExecutor ref_exec = f.makeExec(trivial, 0);
    const GraphResult ref = ref_exec.run(f.io);

    // PrimePar-style plan: PSquare on every linear, B/M elsewhere.
    const TransformerBlockIndex idx;
    std::vector<PartitionSeq> plan(f.graph.numNodes());
    for (int n = 0; n < f.graph.numNodes(); ++n) {
        const OpSpec &op = f.graph.node(n);
        if (op.psquare.has_value()) {
            plan[n] = PartitionSeq({PartitionStep::pSquare(1)});
        } else if (op.kind == "matmul" || op.kind == "softmax") {
            plan[n] = PartitionSeq({PartitionStep::byDim(0),
                                    PartitionStep::byDim(
                                        op.dimIndex("Hd"))});
        } else {
            plan[n] = PartitionSeq({PartitionStep::byDim(0),
                                    PartitionStep::byDim(
                                        op.dimIndex("M"))});
        }
    }
    (void)idx;

    SpmdGraphExecutor exec = f.makeExec(plan, 2);
    const GraphResult got = exec.run(f.io);
    EXPECT_TRUE(got.output.allClose(ref.output, 1e-3f, 1e-4f))
        << "max diff " << got.output.maxAbsDiff(ref.output);
    EXPECT_TRUE(got.d_input.allClose(ref.d_input, 1e-3f, 1e-4f));
    for (const auto &[name, grad] : ref.d_params) {
        EXPECT_TRUE(got.d_params.at(name).allClose(grad, 1e-3f, 1e-4f))
            << name;
    }
    // The four linears used the temporal primitive: ring traffic
    // exists; all-reduces only where spatial contractions remain.
    EXPECT_GT(exec.stats().ringElements, 0);
}

TEST(GraphExecutor, BitIdenticalAcrossThreadCounts)
{
    // Per-device sub-operators run through the thread pool, but every
    // device writes only its own slots and reductions keep a fixed
    // order — so the whole GraphResult must be *exactly* equal (not
    // allClose) at any thread count, including hardware concurrency.
    BlockFixture f;
    const auto plan = megatronStrategies(f.graph, {2, 2});
    ASSERT_TRUE(plan.has_value());

    GraphResult ref;
    {
        SpmdGraphExecutor serial(f.graph, *plan, 2, 1);
        installTransformerBlockTransforms(serial, f.cfg, 2);
        ref = serial.run(f.io);
    }
    for (const int threads : {2, 0}) {
        SpmdGraphExecutor exec(f.graph, *plan, 2, threads);
        installTransformerBlockTransforms(exec, f.cfg, 2);
        const GraphResult got = exec.run(f.io);
        EXPECT_EQ(got.output.maxAbsDiff(ref.output), 0.0f)
            << "threads=" << threads;
        EXPECT_EQ(got.d_input.maxAbsDiff(ref.d_input), 0.0f)
            << "threads=" << threads;
        ASSERT_EQ(got.d_params.size(), ref.d_params.size());
        for (const auto &[name, grad] : ref.d_params) {
            EXPECT_EQ(got.d_params.at(name).maxAbsDiff(grad), 0.0f)
                << name << " threads=" << threads;
        }
    }
}

TEST(GraphExecutor, ResidualGradientsAccumulate)
{
    // d_input must include both the ln1 path and the residual path;
    // zeroing the residual edge's gradient contribution would break
    // equality with the reference, which this asserts indirectly by
    // comparing two strategies' d_input against each other.
    BlockFixture f;
    // Pure data parallelism (B split once, M once) ...
    std::vector<PartitionSeq> plan_a;
    for (int n = 0; n < f.graph.numNodes(); ++n) {
        const OpSpec &op = f.graph.node(n);
        plan_a.push_back(
            PartitionSeq({PartitionStep::byDim(op.dimIndex("B")),
                          PartitionStep::byDim(op.dimIndex("M"))}));
    }
    SpmdGraphExecutor a = f.makeExec(plan_a, 2);
    const GraphResult ra = a.run(f.io);

    // ... versus Megatron tensor parallelism.
    const auto dp = megatronStrategies(f.graph, {2, 2});
    ASSERT_TRUE(dp.has_value());
    SpmdGraphExecutor bexec = f.makeExec(*dp, 2);
    const GraphResult rb = bexec.run(f.io);

    EXPECT_TRUE(ra.d_input.allClose(rb.d_input, 1e-3f, 1e-4f));
    EXPECT_TRUE(ra.output.allClose(rb.output, 1e-3f, 1e-4f));
}

} // namespace
} // namespace primepar
