/**
 * @file
 * Tests of the cluster simulator: engine primitives, per-op phase
 * simulation, memory model and whole-model simulation — including the
 * qualitative claims of the paper (overlap of ring traffic, collective
 * cost of conventional partitions, memory replication effects).
 */

#include <gtest/gtest.h>

#include "graph/transformer.hh"
#include "partition/space.hh"
#include "sim/engine.hh"
#include "sim/memory.hh"
#include "sim/model_sim.hh"
#include "sim/op_sim.hh"

namespace primepar {
namespace {

TEST(Engine, ResourceSerializes)
{
    Resource r;
    EXPECT_EQ(r.occupy(0.0, 5.0), 5.0);
    // Second task ready at 2 but engine busy until 5.
    EXPECT_EQ(r.occupy(2.0, 3.0), 8.0);
    // Idle gap honoured.
    EXPECT_EQ(r.occupy(20.0, 1.0), 21.0);
}

TEST(Engine, ComputeDurationComponents)
{
    DeviceSpec spec;
    spec.flops_per_us = 100.0;
    spec.mem_bytes_per_us = 10.0;
    spec.kernel_overhead_us = 1.0;
    EXPECT_DOUBLE_EQ(computeDuration(spec, 1000.0, 50.0),
                     1.0 + 10.0 + 5.0);
}

TEST(Engine, TransferFasterIntraNode)
{
    const auto topo = ClusterTopology::paperCluster(8);
    const double bytes = 1 << 20;
    EXPECT_LT(transferWireTime(topo, 0, 1, bytes),
              transferWireTime(topo, 0, 4, bytes));
    EXPECT_EQ(transferWireTime(topo, 3, 3, bytes), 0.0);
}

TEST(Engine, RingAllReduceScalesWithGroup)
{
    const auto topo = ClusterTopology::paperCluster(8);
    const double bytes = 64.0 * 1024 * 1024;
    const DeviceGroup pair{0, 1};
    const DeviceGroup quad{0, 1, 2, 3};
    const DeviceGroup cross{0, 4};
    EXPECT_EQ(ringAllReduceDuration(topo, {0}, bytes), 0.0);
    EXPECT_GT(ringAllReduceDuration(topo, pair, bytes), 0.0);
    // Cross-node pairs are far slower than intra-node pairs.
    EXPECT_GT(ringAllReduceDuration(topo, cross, bytes),
              5.0 * ringAllReduceDuration(topo, pair, bytes));
    // Reduce-scatter is half an all-reduce.
    EXPECT_NEAR(reduceScatterDuration(topo, quad, bytes) * 2.0,
                ringAllReduceDuration(topo, quad, bytes), 1e-9);
}

TEST(Engine, ContextTransferQueuesOnPorts)
{
    const auto topo = ClusterTopology::paperCluster(4);
    SimContext ctx(topo);
    const double t1 = ctx.transfer(0, 1, 1e6, 0.0);
    // Second transfer from the same sender must queue behind it.
    const double t2 = ctx.transfer(0, 2, 1e6, 0.0);
    EXPECT_GT(t2, t1);
    // Independent pair runs in parallel.
    SimContext ctx2(topo);
    const double t3 = ctx2.transfer(2, 3, 1e6, 0.0);
    EXPECT_DOUBLE_EQ(t3, t1);
}

TEST(Engine, FaultModelInflatesTransferLatency)
{
    const auto topo = ClusterTopology::paperCluster(4);

    SimContext clean(topo);
    const double base = clean.transfer(0, 1, 1e6, 0.0);

    FaultSimModel faults;
    faults.dropProb = 0.2;
    faults.retryBackoffUs = 50.0;
    faults.stragglerProb = 0.1;
    SimContext faulty(topo);
    faulty.faults = &faults;
    const double slow = faulty.transfer(0, 1, 1e6, 0.0);
    EXPECT_GT(slow, base);

    // E[attempts] = 1/(1-p): 20% retries inflate the wire time by 25%
    // plus the expected backoff and straggler terms.
    const double wire = transferWireTime(topo, 0, 1, 1e6);
    const double expected = wire / 0.8 + (1.0 / 0.8 - 1.0) * 50.0 +
                            0.1 * (faults.stragglerFactor - 1.0) * wire;
    EXPECT_NEAR(slow, expected, 1e-9);

    // A clean model is a no-op.
    FaultSimModel none;
    SimContext same(topo);
    same.faults = &none;
    EXPECT_DOUBLE_EQ(same.transfer(0, 1, 1e6, 0.0), base);
}

TEST(OpSim, PSquareOverlapsRingWithCompute)
{
    // With V100-class compute and NVLink, the P2x2 ring traffic should
    // hide almost completely behind compute (paper Fig. 4/Fig. 9).
    const auto topo = ClusterTopology::paperCluster(4);
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 4096);
    const OpPlan plan(op, PartitionSeq({PartitionStep::pSquare(1)}), 2);

    SimContext ctx(topo);
    SimBreakdown total;
    for (Phase ph :
         {Phase::Forward, Phase::Backward, Phase::Gradient}) {
        total.accumulate(simulateOpPhase(ctx, plan, ph));
    }
    EXPECT_EQ(total.allReduceUs, 0.0);
    EXPECT_GT(total.ringUs, 0.0);
    // Stall (exposed communication) under 15% of compute.
    EXPECT_LT(total.stallUs, 0.15 * total.computeUs);
}

TEST(OpSim, RowParallelPaysAllReduce)
{
    const auto topo = ClusterTopology::paperCluster(4);
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 4096);
    const OpPlan plan(
        op, PartitionSeq({PartitionStep::byDim(2),
                          PartitionStep::byDim(2)}),
        2);
    SimContext ctx(topo);
    const SimBreakdown fwd = simulateOpPhase(ctx, plan, Phase::Forward);
    EXPECT_GT(fwd.allReduceUs, 0.0);
    EXPECT_EQ(fwd.ringUs, 0.0);
}

TEST(OpSim, ComputeBalancedAcrossStrategies)
{
    // Same op, same device count: compute time is partition-invariant
    // (the paper observes Megatron and PrimePar share compute cost).
    const auto topo = ClusterTopology::paperCluster(4);
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 4096);

    auto compute_of = [&](const PartitionSeq &seq) {
        const OpPlan plan(op, seq, 2);
        SimContext ctx(topo);
        SimBreakdown total;
        for (Phase ph :
             {Phase::Forward, Phase::Backward, Phase::Gradient})
            total.accumulate(simulateOpPhase(ctx, plan, ph));
        return total.computeUs;
    };

    const double c_psq =
        compute_of(PartitionSeq({PartitionStep::pSquare(1)}));
    const double c_mm = compute_of(PartitionSeq(
        {PartitionStep::byDim(1), PartitionStep::byDim(1)}));
    // Within kernel-overhead effects.
    EXPECT_NEAR(c_psq / c_mm, 1.0, 0.2);
}

TEST(Memory, PSquareUsesLessMemoryThanReplicatingPartition)
{
    // Weight-heavy linear (large-model fc1 shape, small batch): the
    // regime where replication hurts (paper Sec. 2.2).
    const OpSpec op = makeLinearOp("fc", 8, 512, 12288, 49152);
    // P2x2: no replication. M,M: replicates W (and dW) 4x.
    PartitionSeq psq({PartitionStep::pSquare(1)});
    PartitionSeq mm({PartitionStep::byDim(1), PartitionStep::byDim(1)});
    DsiTable d1(op, psq, 2), d2(op, mm, 2);
    const double m_psq = opMemory(op, psq, d1).total();
    const double m_mm = opMemory(op, mm, d2).total();
    EXPECT_LT(m_psq, m_mm);
}

TEST(Memory, IdealIsLowerBoundOverSpace)
{
    const OpSpec op = makeLinearOp("fc", 8, 512, 512, 512);
    const double ideal = opIdealMemoryBytes(op, 4);
    // Parameter+stash part of every strategy >= ideal.
    for (const auto &seq : enumerateSequences(op, 2)) {
        DsiTable dsi(op, seq, 2);
        const OpMemory mem = opMemory(op, seq, dsi);
        EXPECT_GE(mem.paramBytes + mem.stashBytes, ideal * 0.999)
            << seq.toString(op);
    }
}

TEST(Memory, DoubleBuffersOnlyWithPSquare)
{
    const OpSpec op = makeLinearOp("fc", 8, 512, 512, 512);
    PartitionSeq spatial({PartitionStep::byDim(2),
                          PartitionStep::byDim(3)});
    DsiTable ds(op, spatial, 2);
    EXPECT_EQ(opMemory(op, spatial, ds).doubleBufferBytes, 0.0);

    PartitionSeq psq({PartitionStep::pSquare(1)});
    DsiTable dp(op, psq, 2);
    EXPECT_GT(opMemory(op, psq, dp).doubleBufferBytes, 0.0);
}

TEST(ModelSim, MlpBlockRunsAndBreaksDown)
{
    const auto topo = ClusterTopology::paperCluster(8);
    const ModelConfig cfg = opt6p7b();
    const CompGraph g = buildMlpBlock(cfg, 8);

    // Megatron MLP: fc1 column (K), fc2 row (N); relu splits K-aligned
    // F dimension.
    std::vector<PartitionSeq> strat;
    strat.push_back(PartitionSeq({PartitionStep::byDim(0),
                                  PartitionStep::byDim(3),
                                  PartitionStep::byDim(3)}));
    strat.push_back(PartitionSeq({PartitionStep::byDim(0),
                                  PartitionStep::byDim(2),
                                  PartitionStep::byDim(2)}));
    strat.push_back(PartitionSeq({PartitionStep::byDim(0),
                                  PartitionStep::byDim(2),
                                  PartitionStep::byDim(2)}));
    const ModelSimulator sim(topo, g, strat);
    const ModelSimResult r = sim.simulate();
    EXPECT_GT(r.latencyUs, 0.0);
    EXPECT_GT(r.computeUs, 0.0);
    // fc1 column + fc2 row: forward all-reduce only after fc2;
    // gradient all-reduce from the batch partition.
    EXPECT_GT(r.allReduceUs, 0.0);
    EXPECT_GT(r.peakMemoryBytes, 0.0);
}

TEST(ModelSim, TransformerBlockBuildsAndSimulates)
{
    const auto topo = ClusterTopology::paperCluster(4);
    ModelConfig cfg = opt6p7b();
    cfg.seqLength = 512; // keep the test light
    const CompGraph g = buildTransformerBlock(cfg, 8);
    ASSERT_EQ(g.numNodes(), 13);
    ASSERT_EQ(g.edges().size(), 16u);

    // All ops data-parallel over 4 devices.
    std::vector<PartitionSeq> strat;
    for (int n = 0; n < g.numNodes(); ++n) {
        const int b_dim = g.node(n).dimIndex("B");
        strat.push_back(PartitionSeq({PartitionStep::byDim(b_dim),
                                      PartitionStep::byDim(b_dim)}));
    }
    const ModelSimulator sim(topo, g, strat);
    const ModelSimResult r = sim.simulate(2);
    EXPECT_GT(r.latencyUs, 0.0);
    // Pure data parallelism: no redistribution at all (all edges
    // aligned on the batch split), all-reduce only for gradients.
    EXPECT_EQ(r.redistUs, 0.0);
    EXPECT_GT(r.allReduceUs, 0.0);
}

TEST(ModelSim, LayerScalingIsLinear)
{
    const auto topo = ClusterTopology::paperCluster(4);
    ModelConfig cfg = opt6p7b();
    cfg.seqLength = 256;
    const CompGraph g = buildMlpBlock(cfg, 4);
    std::vector<PartitionSeq> strat(
        3, PartitionSeq(
               {PartitionStep::byDim(0), PartitionStep::byDim(0)}));
    const ModelSimulator sim(topo, g, strat);
    const auto r1 = sim.simulate(1);
    const auto r4 = sim.simulate(4);
    EXPECT_NEAR(r4.latencyUs, 4.0 * r1.latencyUs, 1e-6);
    EXPECT_GT(r4.peakMemoryBytes, r1.peakMemoryBytes);
}

} // namespace
} // namespace primepar
