/**
 * @file
 * Tests of the computation-graph IR, the Fig. 6 transformer block
 * builder and the model zoo.
 */

#include <gtest/gtest.h>

#include "graph/transformer.hh"

namespace primepar {
namespace {

TEST(ModelZoo, ParameterCountsMatchModelNames)
{
    // Transformer-layer parameters should land near the named scale
    // (embeddings and final heads excluded).
    EXPECT_NEAR(opt6p7b().totalParams() / 1e9, 6.7, 0.7);
    EXPECT_NEAR(opt175b().totalParams() / 1e9, 175.0, 10.0);
    EXPECT_NEAR(bloom176b().totalParams() / 1e9, 176.0, 10.0);
    // Llama2 uses a gated 3-matrix MLP; our 2-matrix layer model
    // undershoots slightly but stays in the right decade.
    EXPECT_GT(llama2_7b().totalParams() / 1e9, 4.0);
    EXPECT_LT(llama2_7b().totalParams() / 1e9, 8.0);
    EXPECT_GT(llama2_70b().totalParams() / 1e9, 45.0);
    EXPECT_LT(llama2_70b().totalParams() / 1e9, 80.0);
}

TEST(ModelZoo, HeadEmbedAndLookup)
{
    EXPECT_EQ(opt175b().headEmbed(), 128);
    EXPECT_EQ(bloom176b().headEmbed(), 128);
    EXPECT_EQ(modelByName("OPT 6.7B").hiddenSize, 4096);
    EXPECT_EQ(evaluationModels().size(), 6u);
}

TEST(TransformerBlock, StructureMatchesFig6)
{
    const CompGraph g = buildTransformerBlock(opt6p7b(), 8);
    ASSERT_EQ(g.numNodes(), 13);
    const TransformerBlockIndex idx;
    EXPECT_EQ(g.node(idx.qkv).name, "qkv");
    EXPECT_EQ(g.node(idx.softmax).kind, "softmax");
    EXPECT_EQ(g.node(idx.fc2).kind, "linear");
    EXPECT_EQ(g.node(idx.residual2).kind, "add");

    // The three extended (skip) edges of Fig. 6.
    int skip_edges = 0;
    for (const GraphEdge &e : g.edges()) {
        if (e.dst > e.src + 1)
            ++skip_edges;
    }
    EXPECT_EQ(skip_edges, 3); // e(2,5), e(0,7), e(7,12)

    // Every non-input node has at least one in-edge; every non-final
    // node has at least one consumer.
    for (int n = 1; n < g.numNodes(); ++n)
        EXPECT_FALSE(g.inEdges(n).empty()) << "node " << n;
    for (int n = 0; n + 1 < g.numNodes(); ++n)
        EXPECT_FALSE(g.outEdges(n).empty()) << "node " << n;
}

TEST(TransformerBlock, DimensionSizesPropagate)
{
    const ModelConfig cfg = opt6p7b();
    const CompGraph g = buildTransformerBlock(cfg, 4);
    const TransformerBlockIndex idx;
    const OpSpec &qkv = g.node(idx.qkv);
    EXPECT_EQ(qkv.dims[qkv.dimIndex("N")].size, cfg.hiddenSize);
    EXPECT_EQ(qkv.dims[qkv.dimIndex("K")].size, 3 * cfg.hiddenSize);
    const OpSpec &qk = g.node(idx.qk);
    EXPECT_EQ(qk.dims[qk.dimIndex("Hd")].size, cfg.numHeads);
    EXPECT_EQ(qk.dims[qk.dimIndex("E")].size, cfg.headEmbed());
    EXPECT_FALSE(qk.dims[qk.dimIndex("E")].partitionable);
    const OpSpec &fc1 = g.node(idx.fc1);
    EXPECT_EQ(fc1.dims[fc1.dimIndex("K")].size, cfg.ffnSize);
}

TEST(TransformerBlock, EdgeTransferSizesMatchConsumerTensors)
{
    const ModelConfig cfg = opt6p7b();
    const CompGraph g = buildTransformerBlock(cfg, 4);
    for (const GraphEdge &e : g.edges()) {
        const auto sizes = g.transferSizes(e);
        const OpSpec &consumer = g.node(e.dst);
        ASSERT_EQ(sizes.size(),
                  consumer.tensors[e.dstTensor].dims.size());
        double bytes = consumer.bytesPerElement;
        for (std::int64_t s : sizes)
            bytes *= static_cast<double>(s);
        EXPECT_DOUBLE_EQ(g.transferBytes(e), bytes);
    }
}

TEST(TransformerBlock, EdgeDimMapsReferToProducerDims)
{
    const CompGraph g = buildTransformerBlock(opt6p7b(), 4);
    for (const GraphEdge &e : g.edges()) {
        const OpSpec &producer = g.node(e.src);
        const auto &out_dims =
            producer.tensors[producer.outputTensor].dims;
        for (int d : e.dimMap) {
            if (d < 0)
                continue;
            EXPECT_NE(std::find(out_dims.begin(), out_dims.end(), d),
                      out_dims.end())
                << producer.name << " -> " << g.node(e.dst).name;
        }
    }
}

TEST(MlpBlock, ChainStructure)
{
    const CompGraph g = buildMlpBlock(opt175b(), 8);
    ASSERT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.edges().size(), 2u);
    EXPECT_EQ(g.node(0).name, "fc1");
    EXPECT_EQ(g.node(2).name, "fc2");
    // fc1 output K-dim feeds the activation's F-dim.
    EXPECT_EQ(g.edges()[0].dimMap, (EdgeDimMap{0, 1, 3}));
}

TEST(Graph, InOutEdgeQueries)
{
    CompGraph g;
    g.addNode(makeElementwiseOp("a", {"B", "M"}, {2, 4}));
    g.addNode(makeElementwiseOp("b", {"B", "M"}, {2, 4}));
    g.addNode(makeAddOp("c", {"B", "M"}, {2, 4}));
    g.addEdge(0, 1, 0, {0, 1});
    g.addEdge(1, 2, 0, {0, 1});
    g.addEdge(0, 2, 1, {0, 1});
    EXPECT_EQ(g.inEdges(2).size(), 2u);
    EXPECT_EQ(g.outEdges(0).size(), 2u);
    EXPECT_TRUE(g.inEdges(0).empty());
}

} // namespace
} // namespace primepar
