/**
 * @file
 * Fault-tolerance tests: every injected fault kind — drop, corrupt
 * (payload and header), straggler, permanent device failure — must be
 * detected by the transport and recovered bit-identically; checkpoints
 * round-trip exactly and reject corruption; the trainer resumes with
 * the exact loss trajectory and survives losing a device by degrading
 * the grid, re-planning and restoring from the last checkpoint.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "baselines/megatron.hh"
#include "runtime/checkpoint.hh"
#include "runtime/errors.hh"
#include "runtime/trainer.hh"
#include "runtime/transformer_runtime.hh"

namespace primepar {
namespace {

ModelConfig
tinyModel()
{
    ModelConfig cfg;
    cfg.name = "tiny";
    cfg.hiddenSize = 8;
    cfg.numHeads = 2;
    cfg.ffnSize = 16;
    cfg.seqLength = 4;
    cfg.numLayers = 1;
    return cfg;
}

/** Transformer block, inputs, and the fault-free reference result. */
struct BlockCase
{
    BlockCase() : cfg(tinyModel()), graph(buildTransformerBlock(cfg, 2))
    {
        Rng rng(47);
        io.input = Tensor::random(
            Shape{2, cfg.seqLength, cfg.hiddenSize}, rng);
        io.params = randomBlockParams(graph, rng);
        io.d_output = Tensor::random(
            Shape{2, cfg.seqLength, cfg.hiddenSize}, rng);
    }

    GraphResult
    run(const std::vector<PartitionSeq> &plan, Transport *transport,
        RuntimeHealth *health, int threads = 1, bool overlap = true)
    {
        SpmdGraphExecutor exec(graph, plan, 2, threads, overlap);
        installTransformerBlockTransforms(exec, cfg, 2);
        if (transport)
            exec.setTransport(transport);
        if (health)
            exec.setHealth(health);
        exec.beginStep(0);
        return exec.run(io);
    }

    ModelConfig cfg;
    CompGraph graph;
    GraphIO io;
};

void
expectIdentical(const GraphResult &got, const GraphResult &ref)
{
    EXPECT_EQ(got.output.maxAbsDiff(ref.output), 0.0f);
    EXPECT_EQ(got.d_input.maxAbsDiff(ref.d_input), 0.0f);
    ASSERT_EQ(got.d_params.size(), ref.d_params.size());
    for (const auto &[name, grad] : ref.d_params)
        EXPECT_EQ(got.d_params.at(name).maxAbsDiff(grad), 0.0f) << name;
}

TEST(FaultSpec, ParsesProbabilitiesSeedAndSchedule)
{
    const FaultSpec spec = FaultSpec::parse(
        "drop=0.25,corrupt=0.1,delay=0.05,seed=9,"
        "fail@step=3:dev=2,corrupt@step=5:dev=1:fires=4");
    EXPECT_DOUBLE_EQ(spec.dropProb, 0.25);
    EXPECT_DOUBLE_EQ(spec.corruptProb, 0.1);
    EXPECT_DOUBLE_EQ(spec.delayProb, 0.05);
    EXPECT_EQ(spec.seed, 9u);
    ASSERT_EQ(spec.schedule.size(), 2u);
    EXPECT_EQ(spec.schedule[0].kind, FaultKind::DeviceFail);
    EXPECT_EQ(spec.schedule[0].step, 3);
    EXPECT_EQ(spec.schedule[0].device, 2);
    EXPECT_EQ(spec.schedule[1].fires, 4);
    EXPECT_TRUE(spec.enabled());
    EXPECT_FALSE(FaultSpec{}.enabled());
}

TEST(FaultSpec, RejectsMalformedInput)
{
    EXPECT_THROW(FaultSpec::parse("drop=2.0"), RuntimeError);
    EXPECT_THROW(FaultSpec::parse("drop=abc"), RuntimeError);
    EXPECT_THROW(FaultSpec::parse("explode@step=1"), RuntimeError);
    EXPECT_THROW(FaultSpec::parse("drop"), RuntimeError);
}

TEST(Transport, FusedChecksumCopyMatchesPlainChecksum)
{
    Rng rng(11);
    // Odd sizes exercise the 32-byte, 8-byte and tail loops.
    for (std::int64_t n : {0, 1, 3, 8, 31, 257, 4096}) {
        const Tensor src = Tensor::random(Shape{n}, rng);
        Tensor dst = Tensor::uninitialized(Shape{n});
        const std::size_t bytes =
            static_cast<std::size_t>(n) * sizeof(float);
        const std::uint64_t fused =
            checksumCopyBytes(dst.data(), src.data(), bytes);
        EXPECT_EQ(fused, checksumBytes(src.data(), bytes));
        EXPECT_EQ(fused, checksumBytes(dst.data(), bytes));
        EXPECT_EQ(dst.maxAbsDiff(src), 0.0f);
    }
    // One corrupted byte must change the checksum.
    Tensor t = Tensor::random(Shape{64}, rng);
    const std::uint64_t clean = checksumBytes(t.data(), 256);
    t.data()[17] += 1.0f;
    EXPECT_NE(clean, checksumBytes(t.data(), 256));
}

TEST(Transport, FaultFreePathIsBitIdentical)
{
    BlockCase c;
    const auto plan = defaultBlockPlan(c.graph, 2);
    const GraphResult ref = c.run(plan, nullptr, nullptr);

    for (const int threads : {1, 0}) {
        RuntimeHealth health;
        InProcessTransport transport({}, nullptr, &health);
        const GraphResult got =
            c.run(plan, &transport, &health, threads);
        expectIdentical(got, ref);
        EXPECT_GT(health.transfers, 0);
        EXPECT_GT(health.bytesMoved, 0);
        EXPECT_TRUE(health.allClear()) << health.report();
    }
}

TEST(Transport, ExhaustedRetriesThrowTransientFault)
{
    FaultSpec spec;
    spec.dropProb = 1.0;
    RuntimeHealth health;
    InProcessTransport transport(
        {}, std::make_shared<FaultInjector>(spec), &health);
    TransferTag tag;
    tag.tensor = "X";
    tag.channel = "ring";
    tag.sender = 0;
    tag.receiver = 1;
    Rng rng(3);
    const Tensor payload = Tensor::random(Shape{4, 4}, rng);
    EXPECT_THROW(transport.transfer(tag, payload), TransientFaultError);
    EXPECT_GT(health.dropsDetected, 0);
    EXPECT_GT(health.retries, 0);
}

TEST(Transport, CorruptionIsAlwaysDetectedNeverDelivered)
{
    FaultSpec spec;
    spec.corruptProb = 1.0;
    RuntimeHealth health;
    InProcessTransport transport(
        {}, std::make_shared<FaultInjector>(spec), &health);
    TransferTag tag;
    tag.tensor = "X";
    tag.channel = "ring";
    tag.sender = 0;
    tag.receiver = 1;
    Rng rng(5);
    const Tensor payload = Tensor::random(Shape{8}, rng);
    // Every attempt is corrupted; detection must reject them all
    // rather than deliver a perturbed payload.
    EXPECT_THROW(transport.transfer(tag, payload), TransientFaultError);
    EXPECT_GT(health.corruptionsDetected + health.headerMismatches, 0);
}

struct NamedPlan
{
    const char *name;
    std::vector<PartitionSeq> plan;
};

std::vector<NamedPlan>
plansUnderTest(const CompGraph &graph)
{
    std::vector<NamedPlan> plans;
    // PSquare on the linears: ring, accumulator and transition shifts.
    plans.push_back({"psquare", defaultBlockPlan(graph, 2)});
    // Megatron tensor parallelism: grouped all-reduces.
    const auto megatron = megatronStrategies(graph, {2, 2});
    if (megatron.has_value())
        plans.push_back({"megatron", *megatron});
    return plans;
}

TEST(Transport, RecoversBitIdenticallyFromEachFaultKind)
{
    BlockCase c;
    struct Probe
    {
        const char *name;
        FaultSpec spec;
    };
    std::vector<Probe> probes(3);
    probes[0] = {"drop", {}};
    probes[0].spec.dropProb = 0.05;
    probes[1] = {"corrupt", {}};
    probes[1].spec.corruptProb = 0.05;
    probes[2] = {"delay", {}};
    probes[2].spec.delayProb = 0.1;

    for (const NamedPlan &np : plansUnderTest(c.graph)) {
        const GraphResult ref = c.run(np.plan, nullptr, nullptr);
        for (const Probe &probe : probes) {
            RuntimeHealth health;
            InProcessTransport transport(
                {}, std::make_shared<FaultInjector>(probe.spec),
                &health);
            const GraphResult got =
                c.run(np.plan, &transport, &health);
            expectIdentical(got, ref);
            const std::int64_t detections =
                health.dropsDetected + health.corruptionsDetected +
                health.headerMismatches + health.stragglers;
            EXPECT_GT(detections, 0)
                << np.name << "/" << probe.name
                << ": fault never fired — probe too weak";
            EXPECT_FALSE(health.allClear());
        }
    }
}

TEST(Transport, FaultPatternIsDeterministicAcrossThreadCounts)
{
    BlockCase c;
    const auto plan = defaultBlockPlan(c.graph, 2);
    FaultSpec spec;
    spec.dropProb = 0.05;
    spec.corruptProb = 0.02;
    spec.seed = 1717;

    GraphResult first;
    RuntimeHealth first_health;
    {
        InProcessTransport transport(
            {}, std::make_shared<FaultInjector>(spec), &first_health);
        first = c.run(plan, &transport, &first_health, 1);
    }
    for (const int threads : {2, 0}) {
        RuntimeHealth health;
        InProcessTransport transport(
            {}, std::make_shared<FaultInjector>(spec), &health);
        const GraphResult got =
            c.run(plan, &transport, &health, threads);
        expectIdentical(got, first);
        EXPECT_EQ(health.dropsDetected, first_health.dropsDetected);
        EXPECT_EQ(health.corruptionsDetected,
                  first_health.corruptionsDetected);
        EXPECT_EQ(health.retries, first_health.retries);
    }
}

TEST(Transport, ScheduledFaultForcesStepRollback)
{
    BlockCase c;
    const auto plan = defaultBlockPlan(c.graph, 2);
    const GraphResult ref = c.run(plan, nullptr, nullptr);

    // fires == maxAttempts exhausts one transfer's whole retry budget:
    // the executor must roll the temporal step back, and the re-run
    // (budget consumed) succeeds.
    TransportOptions topts;
    FaultSpec spec;
    ScheduledFault fault;
    fault.kind = FaultKind::Corrupt;
    fault.fires = topts.maxAttempts;
    spec.schedule.push_back(fault);

    RuntimeHealth health;
    InProcessTransport transport(
        topts, std::make_shared<FaultInjector>(spec), &health);
    const GraphResult got = c.run(plan, &transport, &health);
    expectIdentical(got, ref);
    EXPECT_GE(health.stepRollbacks, 1);
}

TEST(Transport, PostedAheadFaultRollsBackOneStepLikeSync)
{
    // With overlap on, ring transfers for step t+1 are posted while
    // step t computes. A fault that exhausts the retry budget of such
    // a posted-ahead transfer surfaces at the step join — inside the
    // same journal frame — so exactly one temporal step rolls back,
    // the re-run recovers bit-identically, and the whole fault /
    // retry / rollback trajectory matches the synchronous path.
    BlockCase c;
    const auto plan = defaultBlockPlan(c.graph, 2);
    const GraphResult ref = c.run(plan, nullptr, nullptr);

    TransportOptions topts;
    FaultSpec spec;
    ScheduledFault fault;
    fault.kind = FaultKind::Corrupt;
    fault.fires = topts.maxAttempts;
    spec.schedule.push_back(fault);

    RuntimeHealth sync_health;
    {
        InProcessTransport transport(
            topts, std::make_shared<FaultInjector>(spec),
            &sync_health);
        const GraphResult got = c.run(plan, &transport, &sync_health,
                                      /*threads=*/1,
                                      /*overlap=*/false);
        expectIdentical(got, ref);
    }
    EXPECT_GE(sync_health.stepRollbacks, 1);

    for (const int threads : {1, 0}) {
        RuntimeHealth health;
        InProcessTransport transport(
            topts, std::make_shared<FaultInjector>(spec), &health);
        const GraphResult got =
            c.run(plan, &transport, &health, threads,
                  /*overlap=*/true);
        expectIdentical(got, ref);
        // The async pipeline keeps the synchronous transfer order, so
        // the scheduled fault hits the same transfer and triggers the
        // same single-step rollback.
        EXPECT_EQ(health.stepRollbacks, sync_health.stepRollbacks);
        EXPECT_EQ(health.corruptionsDetected +
                      health.headerMismatches,
                  sync_health.corruptionsDetected +
                      sync_health.headerMismatches);
        EXPECT_EQ(health.retries, sync_health.retries);
    }
}

TEST(Transport, PermanentDeviceFailureRaises)
{
    BlockCase c;
    const auto plan = defaultBlockPlan(c.graph, 2);
    FaultSpec spec;
    ScheduledFault fault;
    fault.kind = FaultKind::DeviceFail;
    fault.device = 1;
    spec.schedule.push_back(fault);

    RuntimeHealth health;
    InProcessTransport transport(
        {}, std::make_shared<FaultInjector>(spec), &health);
    try {
        c.run(plan, &transport, &health);
        FAIL() << "expected DeviceFailedError";
    } catch (const DeviceFailedError &err) {
        EXPECT_EQ(err.device, 1);
        EXPECT_EQ(health.deviceFailures, 1);
        EXPECT_TRUE(transport.deadDevices().count(1));
    }
}

TEST(Guard, DetectsNaNInfAndExplosions)
{
    const OpSpec op = makeLinearOp("fc", 2, 4, 4, 4);
    SpmdOpExecutor exec(op, PartitionSeq({PartitionStep::byDim(0)}), 1);
    RuntimeHealth health;
    exec.setHealth(&health);

    Rng rng(11);
    std::map<std::string, Tensor> inputs;
    inputs["I"] = Tensor::random(Shape{2, 4, 4}, rng);
    inputs["W"] = Tensor::random(Shape{4, 4}, rng);
    inputs["dO"] = Tensor::random(Shape{2, 4, 4}, rng);
    inputs["I"].data()[0] = std::nanf("");
    inputs["I"].data()[1] = 1e30f; // explodes through the matmul
    exec.run(inputs);

    EXPECT_GT(health.anomalies.nan, 0);
    EXPECT_GT(health.anomalies.explosion, 0);
    EXPECT_FALSE(health.allClear());
    EXPECT_NE(health.report().find("anomal"), std::string::npos);
}

TEST(Checkpoint, RoundTripsExactly)
{
    Rng rng(77);
    Checkpoint ck;
    ck.step = 42;
    ck.params["a.W"] = Tensor::random(Shape{4, 8}, rng);
    ck.params["b.W"] = Tensor::random(Shape{3}, rng);
    ck.optState["a.W"] = Tensor::random(Shape{4, 8}, rng);

    const std::string path = testing::TempDir() + "ck_roundtrip.ppck";
    saveCheckpoint(path, ck);
    const Checkpoint got = loadCheckpoint(path);
    EXPECT_EQ(got.step, 42u);
    ASSERT_EQ(got.params.size(), 2u);
    EXPECT_EQ(got.params.at("a.W").maxAbsDiff(ck.params.at("a.W")),
              0.0f);
    EXPECT_EQ(got.params.at("b.W").maxAbsDiff(ck.params.at("b.W")),
              0.0f);
    ASSERT_EQ(got.optState.size(), 1u);
    EXPECT_EQ(got.optState.at("a.W").maxAbsDiff(ck.optState.at("a.W")),
              0.0f);
    std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptionTruncationAndBadMagic)
{
    Rng rng(78);
    Checkpoint ck;
    ck.step = 7;
    ck.params["w"] = Tensor::random(Shape{16}, rng);
    const std::string path = testing::TempDir() + "ck_damage.ppck";
    saveCheckpoint(path, ck);

    auto readAll = [&]() {
        std::ifstream in(path, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    };
    auto writeAll = [&](const std::string &bytes) {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };
    const std::string pristine = readAll();

    // Bit-flip in the payload -> checksum mismatch.
    std::string flipped = pristine;
    flipped[flipped.size() / 2] ^= 0x20;
    writeAll(flipped);
    try {
        loadCheckpoint(path);
        FAIL() << "expected CheckpointError";
    } catch (const CheckpointError &err) {
        EXPECT_NE(std::string(err.what()).find("checksum"),
                  std::string::npos);
    }

    // Truncation -> size mismatch.
    writeAll(pristine.substr(0, pristine.size() - 9));
    EXPECT_THROW(loadCheckpoint(path), CheckpointError);

    // Bad magic -> not a checkpoint.
    std::string not_ours = pristine;
    not_ours[0] = 'X';
    writeAll(not_ours);
    try {
        loadCheckpoint(path);
        FAIL() << "expected CheckpointError";
    } catch (const CheckpointError &err) {
        EXPECT_NE(std::string(err.what()).find("magic"),
                  std::string::npos);
    }

    // Missing file.
    std::remove(path.c_str());
    EXPECT_THROW(loadCheckpoint(path), CheckpointError);
}

TrainerOptions
tinyTrainer()
{
    TrainerOptions opts;
    opts.model = tinyModel();
    opts.batch = 2;
    opts.runtime.numBits = 2;
    opts.lr = 0.05;
    opts.seed = 2024;
    return opts;
}

TEST(Trainer, ResumeReproducesExactLossTrajectory)
{
    const int total_steps = 8;
    const int resume_at = 4;

    // Uninterrupted reference run.
    std::vector<double> ref_losses;
    {
        BlockTrainer trainer(tinyTrainer());
        for (int s = 0; s < total_steps; ++s)
            ref_losses.push_back(trainer.trainStep().loss);
    }

    // Run half, checkpoint, throw the trainer away.
    const std::string path = testing::TempDir() + "ck_resume.ppck";
    TrainerOptions opts = tinyTrainer();
    opts.runtime.checkpoint.path = path;
    {
        BlockTrainer trainer(opts);
        for (int s = 0; s < resume_at; ++s) {
            EXPECT_EQ(trainer.trainStep().loss, ref_losses[s])
                << "pre-checkpoint divergence at step " << s;
        }
        trainer.saveCheckpointNow();
    }

    // Resume in a fresh trainer: the tail must match bit-for-bit.
    {
        BlockTrainer trainer(opts);
        trainer.resumeFromCheckpointFile();
        EXPECT_EQ(trainer.step(), resume_at);
        for (int s = resume_at; s < total_steps; ++s) {
            const StepStats stats = trainer.trainStep();
            EXPECT_EQ(stats.step, s);
            EXPECT_EQ(stats.loss, ref_losses[s])
                << "post-resume divergence at step " << s;
        }
    }
    std::remove(path.c_str());
}

TEST(Trainer, SurvivesPermanentDeviceFailure)
{
    const int total_steps = 8;

    // Fault-free trajectory for comparison.
    std::vector<double> ref_losses;
    {
        BlockTrainer trainer(tinyTrainer());
        for (int s = 0; s < total_steps; ++s)
            ref_losses.push_back(trainer.trainStep().loss);
    }

    const std::string path = testing::TempDir() + "ck_failover.ppck";
    TrainerOptions opts = tinyTrainer();
    opts.runtime.checkpoint.path = path;
    opts.runtime.checkpoint.every = 2;
    opts.runtime.checkpoint.maxReplans = 1;
    opts.runtime.faults = FaultSpec::parse("fail@step=4:dev=2");

    BlockTrainer trainer(opts);
    std::vector<double> losses;
    for (int s = 0; s < total_steps; ++s)
        losses.push_back(trainer.trainStep().loss);

    // The grid degraded 4 -> 2 devices, restored the step-4 checkpoint
    // and completed every step.
    EXPECT_EQ(trainer.deviceBits(), 1);
    EXPECT_EQ(trainer.step(), total_steps);
    EXPECT_EQ(trainer.health().deviceFailures, 1);
    EXPECT_EQ(trainer.health().replans, 1);
    EXPECT_EQ(trainer.health().checkpointRestores, 1);

    // The degraded grid sums in a different order, so the trajectory
    // is near-equal, not bitwise: before the failure it must be exact.
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(losses[s], ref_losses[s]) << "step " << s;
    for (int s = 4; s < total_steps; ++s)
        EXPECT_NEAR(losses[s], ref_losses[s], 1e-3) << "step " << s;
    std::remove(path.c_str());
}

TEST(Trainer, TransientFaultsLeaveTrajectoryExact)
{
    const int total_steps = 6;
    std::vector<double> ref_losses;
    {
        BlockTrainer trainer(tinyTrainer());
        for (int s = 0; s < total_steps; ++s)
            ref_losses.push_back(trainer.trainStep().loss);
    }

    TrainerOptions opts = tinyTrainer();
    opts.runtime.faults =
        FaultSpec::parse("drop=0.02,corrupt=0.02,seed=99");
    BlockTrainer trainer(opts);
    for (int s = 0; s < total_steps; ++s) {
        EXPECT_EQ(trainer.trainStep().loss, ref_losses[s])
            << "step " << s;
    }
    const RuntimeHealth &health = trainer.health();
    EXPECT_GT(health.dropsDetected + health.corruptionsDetected +
                  health.headerMismatches,
              0)
        << "probabilities too low to exercise recovery";
    EXPECT_GT(health.retries, 0);
}

// ---------------------------------------------------------------------------
// PR 8 additions: typed parse errors, net faults, jittered backoff,
// checkpoint damage messages.

TEST(FaultSpec, MalformedSpecsThrowInputError)
{
    // Every malformed spec is a *typed*, catchable InputError (the
    // CLIs map it to the documented usage exit code) — never an
    // assertion or abort.
    EXPECT_THROW(FaultSpec::parse("explode@step=1"), InputError);
    EXPECT_THROW(FaultSpec::parse("warp=0.1"), InputError);
    EXPECT_THROW(FaultSpec::parse("drop=-0.25"), InputError);
    EXPECT_THROW(FaultSpec::parse("netdrop=1.5"), InputError);
    EXPECT_THROW(FaultSpec::parse("drop=0.1junk"), InputError);
    EXPECT_THROW(FaultSpec::parse("drop"), InputError);
    EXPECT_THROW(FaultSpec::parse("kill@step=two:dev=1"), InputError);
    EXPECT_THROW(FaultSpec::parse("fail@step=1:when=now"), InputError);
    try {
        FaultSpec::parse("explode@step=1");
        FAIL() << "expected InputError";
    } catch (const InputError &err) {
        EXPECT_NE(std::string(err.what()).find("explode"),
                  std::string::npos)
            << err.what();
    }
}

TEST(FaultSpec, ParsesNetFaultsAndWorkerKill)
{
    const FaultSpec spec = FaultSpec::parse(
        "netdrop=0.1,netdelay=0.05,nettrunc=0.02,kill@step=4:dev=1");
    EXPECT_DOUBLE_EQ(spec.netDropProb, 0.1);
    EXPECT_DOUBLE_EQ(spec.netDelayProb, 0.05);
    EXPECT_DOUBLE_EQ(spec.netTruncateProb, 0.02);
    ASSERT_EQ(spec.schedule.size(), 1u);
    EXPECT_EQ(spec.schedule[0].kind, FaultKind::WorkerKill);
    EXPECT_TRUE(spec.enabled());

    // toString round-trips the new kinds.
    const FaultSpec again = FaultSpec::parse(spec.toString());
    EXPECT_DOUBLE_EQ(again.netDropProb, spec.netDropProb);
    EXPECT_DOUBLE_EQ(again.netTruncateProb, spec.netTruncateProb);
    ASSERT_EQ(again.schedule.size(), 1u);
    EXPECT_EQ(again.schedule[0].kind, FaultKind::WorkerKill);

    // The kill budget is consumed exactly once, by the right worker
    // at the right step.
    FaultInjector inj(spec);
    EXPECT_FALSE(inj.consumeWorkerKill(3, 1));
    EXPECT_FALSE(inj.consumeWorkerKill(4, 0));
    EXPECT_TRUE(inj.consumeWorkerKill(4, 1));
    EXPECT_FALSE(inj.consumeWorkerKill(4, 1));
}

TEST(Transport, NetFaultsAreNoOpsInProcess)
{
    // Socket faults are enacted by the wire *sender* only; the
    // in-process transport (and every non-participant replica of a
    // wire transfer) must ignore them completely — otherwise the
    // replicated fault pattern would diverge across worker processes.
    BlockCase c;
    const auto plan = defaultBlockPlan(c.graph, 2);
    const GraphResult ref = c.run(plan, nullptr, nullptr);

    const FaultSpec spec =
        FaultSpec::parse("netdrop=1.0,netdelay=1.0,nettrunc=1.0");
    RuntimeHealth health;
    InProcessTransport transport(
        {}, std::make_shared<FaultInjector>(spec), &health);
    const GraphResult got = c.run(plan, &transport, &health);
    expectIdentical(got, ref);
    EXPECT_EQ(health.retries, 0);
    EXPECT_TRUE(health.allClear()) << health.report();
}

TEST(Transport, RetryBackoffIsJitteredDeterministicAndCapped)
{
    TransportOptions opts;
    opts.backoffUs = 10.0;
    opts.backoffCapUs = 500.0;

    // Deterministic for a (stream, attempt) pair; decorrelated across
    // streams and seeds.
    EXPECT_DOUBLE_EQ(retryBackoffUs(opts, 7, 3),
                     retryBackoffUs(opts, 7, 3));
    EXPECT_NE(retryBackoffUs(opts, 7, 3), retryBackoffUs(opts, 8, 3));
    TransportOptions reseeded = opts;
    reseeded.backoffJitterSeed ^= 0x5555;
    EXPECT_NE(retryBackoffUs(opts, 7, 2),
              retryBackoffUs(reseeded, 7, 2));

    // Exponential envelope: attempt k waits base * 2^k scaled by a
    // jitter in [0.5, 1.0), everything capped.
    for (int attempt = 0; attempt < 5; ++attempt) {
        const double full = 10.0 * static_cast<double>(1 << attempt);
        const double w = retryBackoffUs(opts, 1, attempt);
        EXPECT_GE(w, 0.5 * full);
        EXPECT_LT(w, full + 1e-9);
        EXPECT_LE(w, 500.0);
    }
    EXPECT_DOUBLE_EQ(retryBackoffUs(opts, 1, 10), 500.0);
    // Far past the cap the shift must not overflow.
    EXPECT_DOUBLE_EQ(retryBackoffUs(opts, 1, 1000), 500.0);

    TransportOptions off;
    off.backoffUs = 0.0;
    EXPECT_DOUBLE_EQ(retryBackoffUs(off, 1, 3), 0.0);
}

TEST(Checkpoint, DamageMessagesNameFileAndCause)
{
    Rng rng(79);
    Checkpoint ck;
    ck.step = 3;
    ck.params["w"] = Tensor::random(Shape{32}, rng);
    const std::string path = testing::TempDir() + "ck_messages.ppck";
    saveCheckpoint(path, ck);

    std::ifstream in(path, std::ios::binary);
    std::string pristine((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    auto writeAll = [&](const std::string &bytes) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };

    // Truncated mid-payload: the message names the file and says
    // "truncated" with the promised vs actual sizes.
    writeAll(pristine.substr(0, pristine.size() / 2));
    try {
        loadCheckpoint(path);
        FAIL() << "expected CheckpointError";
    } catch (const CheckpointError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    }

    // A single flipped bit in the payload: checksum mismatch, again
    // naming the file.
    std::string flipped = pristine;
    flipped[flipped.size() - 16] ^= 0x01;
    writeAll(flipped);
    try {
        loadCheckpoint(path);
        FAIL() << "expected CheckpointError";
    } catch (const CheckpointError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("checksum"), std::string::npos) << msg;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace primepar
