/**
 * @file
 * Tests of the ZeRO baseline model: stage-by-stage memory reduction
 * and the memory/collective trade-off against tensor partitioning.
 */

#include <gtest/gtest.h>

#include "baselines/zero.hh"

namespace primepar {
namespace {

TEST(Zero, StageNames)
{
    EXPECT_STREQ(zeroStageName(ZeroStage::None), "DP");
    EXPECT_STREQ(zeroStageName(ZeroStage::Three), "ZeRO-3");
}

TEST(Zero, MemoryDropsMonotonicallyWithStage)
{
    ModelConfig model = opt6p7b();
    model.seqLength = 512;
    const auto topo = ClusterTopology::paperCluster(16);
    double prev = 1e30;
    for (ZeroStage stage : {ZeroStage::None, ZeroStage::One,
                            ZeroStage::Two, ZeroStage::Three}) {
        const ZeroResult r = evaluateZero(model, topo, 16, stage);
        EXPECT_LT(r.peakMemoryBytes, prev) << zeroStageName(stage);
        prev = r.peakMemoryBytes;
        EXPECT_GT(r.computeUs, 0.0);
    }
}

TEST(Zero, Stage3ShardsEverything)
{
    ModelConfig model = opt6p7b();
    model.seqLength = 512;
    const auto topo = ClusterTopology::paperCluster(16);
    const ZeroResult none = evaluateZero(model, topo, 16,
                                         ZeroStage::None);
    const ZeroResult z3 = evaluateZero(model, topo, 16,
                                       ZeroStage::Three);
    // Full state 12 bytes/param replicated vs fully sharded: the
    // state part must shrink by ~16x (activations are shared).
    const double state_none = model.totalParams() * 12.0;
    const double state_z3 = state_none / 16.0;
    EXPECT_NEAR(none.peakMemoryBytes - z3.peakMemoryBytes,
                state_none - state_z3, 0.01 * state_none);
}

TEST(Zero, Stage3PaysMoreCollectiveThanStage2)
{
    ModelConfig model = opt6p7b();
    model.seqLength = 512;
    const auto topo = ClusterTopology::paperCluster(16);
    const ZeroResult z2 = evaluateZero(model, topo, 16, ZeroStage::Two);
    const ZeroResult z3 = evaluateZero(model, topo, 16,
                                       ZeroStage::Three);
    EXPECT_GT(z3.collectiveUs, z2.collectiveUs);
    // Reduce-scatter is cheaper than the full all-reduce of DP.
    const ZeroResult dp = evaluateZero(model, topo, 16,
                                       ZeroStage::None);
    EXPECT_LT(z2.collectiveUs, dp.collectiveUs);
}

TEST(Zero, ComputeUnchangedAcrossStages)
{
    ModelConfig model = opt6p7b();
    model.seqLength = 512;
    const auto topo = ClusterTopology::paperCluster(16);
    const ZeroResult a = evaluateZero(model, topo, 16, ZeroStage::None);
    const ZeroResult b = evaluateZero(model, topo, 16,
                                      ZeroStage::Three);
    EXPECT_DOUBLE_EQ(a.computeUs, b.computeUs);
}

} // namespace
} // namespace primepar
