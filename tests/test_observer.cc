/**
 * @file
 * Tests of the unified RuntimeObserver API: span emission from the
 * real executor, metrics determinism across thread counts, the
 * migrated NaN/Inf guard, trainer-level milestones, calibration JSON
 * round-trips, and the deprecated flat-option alias.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "cost/calibration.hh"
#include "cost/profiler.hh"
#include "graph/transformer.hh"
#include "runtime/metrics.hh"
#include "runtime/observer.hh"
#include "runtime/spmd_executor.hh"
#include "runtime/trainer.hh"
#include "runtime/transport.hh"
#include "support/json.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "topology/cluster.hh"

namespace primepar {
namespace {

std::map<std::string, Tensor>
linearInputs(Rng &rng)
{
    return {
        {"I", Tensor::random(Shape{2, 8, 8}, rng)},
        {"W", Tensor::random(Shape{8, 8}, rng)},
        {"dO", Tensor::random(Shape{2, 8, 8}, rng)},
    };
}

/** Counts every callback; used to test chain fan-out and coverage. */
struct CountingObserver : RuntimeObserver
{
    int stepBegins = 0, stepEnds = 0, spans = 0, transfers = 0;
    int faults = 0, rollbacks = 0, tensors = 0, checkpoints = 0;

    void onStepBegin(std::int64_t) override { ++stepBegins; }
    void onStepEnd(std::int64_t, double) override { ++stepEnds; }
    void
    onSpan(std::int64_t, SpanKind, const std::string &, double,
           double) override
    {
        ++spans;
    }
    void
    onTransfer(const TransferTag &, std::int64_t, std::int64_t, int,
               double) override
    {
        ++transfers;
    }
    void onFault(const FaultEvent &) override { ++faults; }
    void onRollback(std::int64_t) override { ++rollbacks; }
    void
    onTensorProduced(const std::string &, std::int64_t,
                     const Tensor &) override
    {
        ++tensors;
    }
    void onCheckpoint(bool, std::int64_t, double) override
    {
        ++checkpoints;
    }
};

TEST(Observer, ExecutorEmitsSpansOfEveryRuntimeKind)
{
    const OpSpec op = makeLinearOp("fc", 2, 8, 8, 8);
    Rng rng(7);
    const auto inputs = linearInputs(rng);

    TracingObserver tracer;
    InProcessTransport transport;
    SpmdOpExecutor exec(op, parseSequence(op, "P2x2"), 2);
    exec.setTransport(&transport);
    exec.addObserver(&tracer);
    (void)exec.run(inputs);
    // A contracted split all-reduces the partial outputs (PSquare
    // instead migrates accumulators, so it emits no AllReduce span).
    SpmdOpExecutor split(op, parseSequence(op, "N,N"), 2);
    split.setTransport(&transport);
    split.addObserver(&tracer);
    (void)split.run(inputs);

    const Trace trace = tracer.snapshot();
    bool compute = false, ring = false, allreduce = false,
         redist = false;
    for (const auto &s : trace.spans()) {
        EXPECT_GE(s.endUs, s.startUs);
        EXPECT_GE(s.startUs, 0.0); // normalized to the observer base
        compute |= s.kind == SpanKind::Compute;
        ring |= s.kind == SpanKind::Ring;
        allreduce |= s.kind == SpanKind::AllReduce;
        redist |= s.kind == SpanKind::Redist;
    }
    EXPECT_TRUE(compute);
    EXPECT_TRUE(ring);      // PSquare shifts I and W each step
    EXPECT_TRUE(allreduce); // contracted split merges partial sums
    EXPECT_TRUE(redist);    // input scatter

    // The recording exports as valid Chrome-trace JSON and as the
    // per-kind summary.
    const JsonValue doc = parseJson(trace.toChromeJson());
    EXPECT_TRUE(doc.isArray());
    EXPECT_GT(doc.items().size(), 0u);
    const std::string summary = trace.summary();
    EXPECT_NE(summary.find("compute"), std::string::npos);
}

TEST(Observer, ChainFansOutToEveryMember)
{
    CountingObserver a, b;
    ObserverChain chain;
    EXPECT_TRUE(chain.empty());
    chain.add(&a);
    chain.add(&b);
    chain.add(nullptr); // ignored
    EXPECT_FALSE(chain.empty());

    chain.onStepBegin(0);
    chain.onStepEnd(0, 1.0);
    chain.onSpan(0, SpanKind::Compute, "x", 0.0, 1.0);
    chain.onTransfer(TransferTag{}, 64, 64, 1, 1.0);
    chain.onFault(FaultEvent{});
    chain.onRollback(0);
    Tensor t(Shape{1});
    chain.onTensorProduced("x", 0, t);
    chain.onCheckpoint(true, 0, 1.0);

    for (const CountingObserver *o : {&a, &b}) {
        EXPECT_EQ(o->stepBegins, 1);
        EXPECT_EQ(o->stepEnds, 1);
        EXPECT_EQ(o->spans, 1);
        EXPECT_EQ(o->transfers, 1);
        EXPECT_EQ(o->faults, 1);
        EXPECT_EQ(o->rollbacks, 1);
        EXPECT_EQ(o->tensors, 1);
        EXPECT_EQ(o->checkpoints, 1);
    }
}

TEST(Observer, MetricsCountersAreThreadCountInvariant)
{
    const OpSpec op = makeLinearOp("fc", 2, 8, 8, 8);
    const PartitionSeq seq = parseSequence(op, "P2x2");

    auto countersAt = [&](int threads) {
        Rng rng(11);
        const auto inputs = linearInputs(rng);
        MetricsRegistry registry;
        MetricsObserver metrics(&registry);
        InProcessTransport transport;
        transport.setObserver(&metrics);
        ThreadPool pool(threads);
        SpmdOpExecutor exec(op, seq, 2);
        exec.setTransport(&transport);
        if (threads > 1)
            exec.setThreadPool(&pool);
        exec.addObserver(&metrics);
        (void)exec.run(inputs);
        return registry.counters();
    };

    const auto serial = countersAt(1);
    const auto parallel = countersAt(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel); // exact map equality, value by value
    EXPECT_GT(serial.at("spans.compute"), 0);
    EXPECT_GT(serial.at("transport.transfers"), 0);
    EXPECT_GT(serial.at("transport.bytes"), 0);
    EXPECT_GT(serial.at("anomalies.scans"), 0);
}

TEST(Observer, GuardStillFeedsRuntimeHealthThroughSetHealth)
{
    const OpSpec op = makeLinearOp("fc", 2, 8, 8, 8);
    Rng rng(13);
    auto inputs = linearInputs(rng);
    inputs.at("I").data()[0] = std::nanf("");

    RuntimeHealth health;
    SpmdOpExecutor exec(op, parseSequence(op, "P2x2"), 2);
    exec.setHealth(&health, GuardOptions{});
    (void)exec.run(inputs);

    EXPECT_GT(health.anomalies.nan, 0);
    EXPECT_FALSE(health.allClear());
}

TEST(Observer, MetricsSnapshotIsValidVersionedJson)
{
    MetricsRegistry registry;
    registry.add("steps", 3);
    registry.observe("step.latency_us", 1500.0);
    registry.observe("step.latency_us", 2500.0);

    const JsonValue doc = parseJson(registry.snapshotJson().toString());
    EXPECT_EQ(doc.at("schema").asString(), "primepar-metrics-v1");
    EXPECT_EQ(doc.at("counters").at("steps").asNumber(), 3.0);
    const JsonValue &hist =
        doc.at("histograms").at("step.latency_us");
    EXPECT_EQ(hist.at("count").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(hist.at("sum").asNumber(), 4000.0);
    EXPECT_TRUE(doc.at("buffer_pool").isObject());
}

TEST(Observer, HistogramPercentilesAreOrdered)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    const double p50 = h.percentile(50.0);
    const double p90 = h.percentile(90.0);
    const double p99 = h.percentile(99.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, 1000.0 + 1e-9);
    EXPECT_GT(p50, 0.0);
}

TEST(Observer, TrainerReportsStepsAndCheckpoints)
{
    ModelConfig cfg;
    cfg.name = "tiny";
    cfg.hiddenSize = 8;
    cfg.numHeads = 2;
    cfg.ffnSize = 16;
    cfg.seqLength = 4;
    cfg.numLayers = 1;

    TrainerOptions opts;
    opts.model = cfg;
    opts.batch = 2;
    opts.runtime.numBits = 2;
    opts.runtime.checkpoint.path =
        testing::TempDir() + "observer_ck.ppck";
    opts.runtime.checkpoint.every = 2;

    MetricsRegistry registry;
    MetricsObserver metrics(&registry);
    CountingObserver counting;
    BlockTrainer trainer(opts);
    trainer.addObserver(&metrics);
    trainer.addObserver(&counting);
    for (int s = 0; s < 2; ++s)
        (void)trainer.trainStep();

    EXPECT_EQ(registry.counter("steps"), 2);
    EXPECT_EQ(registry.counter("checkpoint.saves"), 1);
    EXPECT_EQ(counting.stepBegins, 2);
    EXPECT_EQ(counting.stepEnds, 2);
    EXPECT_EQ(counting.checkpoints, 1);
    EXPECT_GT(counting.spans, 0);     // executor spans reach the chain
    EXPECT_GT(counting.transfers, 0); // transport events reach it too
    const Histogram *lat = registry.histogram("step.latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count(), 2);
}

TEST(Observer, CalibrationJsonRoundTripsExactly)
{
    const auto topo = ClusterTopology::paperCluster(8);
    const ProfiledModels models = profileModels(topo);
    CalibrationInfo info;
    info.source = "simulator";
    info.r2["matmul_kernel"] = 0.998;

    CalibrationInfo back_info;
    const ProfiledModels back = profiledModelsFromJson(
        parseJson(profiledModelsToJson(models, &info).toString()),
        &back_info);

    EXPECT_EQ(back.matmulKernel.intercept, models.matmulKernel.intercept);
    EXPECT_EQ(back.matmulKernel.slope, models.matmulKernel.slope);
    EXPECT_EQ(back.memoryKernel.slope, models.memoryKernel.slope);
    EXPECT_EQ(back.ringHop[0].slope, models.ringHop[0].slope);
    EXPECT_EQ(back.ringHop[1].slope, models.ringHop[1].slope);
    EXPECT_EQ(back.redistribution[1].slope,
              models.redistribution[1].slope);
    ASSERT_EQ(back.allReduce.size(), models.allReduce.size());
    for (const auto &[key, model] : models.allReduce) {
        const auto it = back.allReduce.find(key);
        ASSERT_NE(it, back.allReduce.end());
        EXPECT_EQ(it->second.intercept, model.intercept);
        EXPECT_EQ(it->second.slope, model.slope);
    }
    EXPECT_EQ(back_info.source, "simulator");
    EXPECT_DOUBLE_EQ(back_info.r2.at("matmul_kernel"), 0.998);
}

TEST(Observer, CalibrationRejectsForeignSchemas)
{
    EXPECT_THROW(profiledModelsFromJson(
                     parseJson("{\"schema\": \"other-v9\"}")),
                 CalibrationError);
    EXPECT_THROW(profiledModelsFromJson(parseJson("{}")),
                 CalibrationError);
    EXPECT_THROW(profiledModelsFromJson(parseJson("[1, 2]")),
                 CalibrationError);
}

TEST(Observer, NestedRuntimeOptionsCarryEverySection)
{
    TrainerOptions opts;
    opts.runtime.numBits = 3;
    opts.runtime.execution.numThreads = 4;
    opts.runtime.execution.overlapComm = false;
    opts.runtime.checkpoint.path = "ck.ppck";
    opts.runtime.checkpoint.every = 5;
    opts.runtime.checkpoint.maxReplans = 1;
    opts.runtime.checkpoint.keepHistory = true;
    opts.runtime.transport.maxAttempts = 9;
    opts.runtime.guard.explosionThreshold = 123.0f;

    EXPECT_EQ(opts.runtime.numBits, 3);
    EXPECT_EQ(opts.runtime.execution.numThreads, 4);
    EXPECT_FALSE(opts.runtime.execution.overlapComm);
    EXPECT_TRUE(opts.runtime.execution.ownedDevices.all());
    EXPECT_EQ(opts.runtime.checkpoint.path, "ck.ppck");
    EXPECT_EQ(opts.runtime.checkpoint.every, 5);
    EXPECT_EQ(opts.runtime.checkpoint.maxReplans, 1);
    EXPECT_TRUE(opts.runtime.checkpoint.keepHistory);
    EXPECT_EQ(opts.runtime.transport.maxAttempts, 9);
    EXPECT_FLOAT_EQ(opts.runtime.guard.explosionThreshold, 123.0f);
}

} // namespace
} // namespace primepar
