/**
 * @file
 * Exactness of the blocked tensor kernels and the buffer pool.
 *
 * The blocked/SIMD GEMM promises *bit-identical* results to the naive
 * seed loops (gemm.hh's determinism contract) — not allClose, exact
 * float equality, across odd sizes that exercise every micro-kernel
 * edge case. Also covers NaN/Inf propagation (the seed's `v == 0`
 * shortcut silently dropped them), the einsum GEMM fast path against
 * the odometer, slice/assignSlice fast paths, and BufferPool reuse.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/einsum.hh"
#include "tensor/gemm.hh"
#include "tensor/ops.hh"

namespace primepar {
namespace {

// Sizes straddling the micro-kernel tile boundaries (MR=4, NR=8,
// KC=256): exact multiples, off-by-one edges, tiny and tall/skinny.
struct Dims
{
    std::int64_t m, n, k;
};
const Dims kGemmSizes[] = {
    {1, 1, 1},   {3, 5, 7},    {4, 8, 16},  {5, 9, 17},
    {8, 24, 33}, {13, 7, 300}, {32, 8, 257}, {17, 31, 64},
};

TEST(BlockedKernels, LinearForwardBitIdenticalToNaive)
{
    Rng rng(11);
    for (const Dims &d : kGemmSizes) {
        const Tensor in = Tensor::random({d.m, d.k}, rng);
        const Tensor w = Tensor::random({d.k, d.n}, rng);
        const Tensor blocked = linearForward(in, w);
        const Tensor ref = naive::linearForward(in, w);
        EXPECT_EQ(blocked.maxAbsDiff(ref), 0.0f)
            << d.m << "x" << d.n << "x" << d.k;
    }
    // Batched (rank-3) input path.
    const Tensor in = Tensor::random({3, 5, 19}, rng);
    const Tensor w = Tensor::random({19, 11}, rng);
    EXPECT_EQ(linearForward(in, w).maxAbsDiff(naive::linearForward(in, w)),
              0.0f);
}

TEST(BlockedKernels, LinearBackwardBitIdenticalToNaive)
{
    Rng rng(12);
    for (const Dims &d : kGemmSizes) {
        const Tensor go = Tensor::random({d.m, d.k}, rng);
        const Tensor w = Tensor::random({d.n, d.k}, rng);
        const Tensor blocked = linearBackward(go, w);
        const Tensor ref = naive::linearBackward(go, w);
        EXPECT_EQ(blocked.maxAbsDiff(ref), 0.0f)
            << d.m << "x" << d.n << "x" << d.k;
    }
}

TEST(BlockedKernels, LinearGradientBitIdenticalToNaive)
{
    Rng rng(13);
    for (const Dims &d : kGemmSizes) {
        const Tensor in = Tensor::random({d.m, d.n}, rng);
        const Tensor go = Tensor::random({d.m, d.k}, rng);
        const Tensor blocked = linearGradient(in, go);
        const Tensor ref = naive::linearGradient(in, go);
        EXPECT_EQ(blocked.maxAbsDiff(ref), 0.0f)
            << d.m << "x" << d.n << "x" << d.k;
    }
}

TEST(BlockedKernels, BatchedMatmulBitIdenticalAllTransCombos)
{
    Rng rng(14);
    for (const bool ta : {false, true}) {
        for (const bool tb : {false, true}) {
            // a is (m x k) or transposed, b is (k x n) or transposed.
            const std::int64_t m = 9, n = 13, k = 21;
            const Tensor a = ta ? Tensor::random({2, 3, k, m}, rng)
                                : Tensor::random({2, 3, m, k}, rng);
            const Tensor b = tb ? Tensor::random({2, 3, n, k}, rng)
                                : Tensor::random({2, 3, k, n}, rng);
            const Tensor blocked = batchedMatmul(a, b, ta, tb);
            const Tensor ref = naive::batchedMatmul(a, b, ta, tb);
            EXPECT_EQ(blocked.maxAbsDiff(ref), 0.0f)
                << "trans_a=" << ta << " trans_b=" << tb;
        }
    }
}

TEST(BlockedKernels, ZeroTimesNanPropagates)
{
    // The seed GEMMs skipped zero operand values entirely, silently
    // turning 0 * NaN into 0. The blocked kernels must propagate.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float inf = std::numeric_limits<float>::infinity();

    Tensor in(Shape{1, 2}); // stays all zero
    Tensor w(Shape{2, 2});
    w.at({0, 0}) = nan;
    w.at({1, 1}) = inf;
    const Tensor out = linearForward(in, w);
    EXPECT_TRUE(std::isnan(out.at({0, 0}))); // 0 * NaN
    EXPECT_TRUE(std::isnan(out.at({0, 1}))); // 0 * inf
    // And the naive references match that behaviour bit-for-bit in
    // kind (NaN == NaN fails, so compare via isnan).
    const Tensor ref = naive::linearForward(in, w);
    EXPECT_TRUE(std::isnan(ref.at({0, 0})));
    EXPECT_TRUE(std::isnan(ref.at({0, 1})));

    Tensor go(Shape{1, 2});
    go.at({0, 0}) = nan;
    const Tensor dw = linearGradient(in, go); // dw = in^T x go, in = 0
    EXPECT_TRUE(std::isnan(dw.at({0, 0})));
    EXPECT_TRUE(std::isnan(dw.at({1, 0})));
}

TEST(Einsum, GemmFastPathBitIdenticalToOdometer)
{
    Rng rng(15);
    // Plain matmul: out[i,j] += a[i,l] * b[l,j].
    {
        const Tensor a = Tensor::random({17, 33}, rng);
        const Tensor b = Tensor::random({33, 9}, rng);
        Tensor fast(Shape{17, 9}), ref(Shape{17, 9});
        contractProduct(a, {0, 1}, b, {1, 2}, fast, {0, 2});
        naive::contract(a, {0, 1}, b, {1, 2}, ref, {0, 2});
        EXPECT_EQ(fast.maxAbsDiff(ref), 0.0f);
    }
    // Attention-score shape: batched with transposed B
    // (scores[b,h,m,m2] += q[b,h,m,d] * kT[b,h,m2,d]).
    {
        const Tensor q = Tensor::random({2, 3, 5, 7}, rng);
        const Tensor k = Tensor::random({2, 3, 11, 7}, rng);
        Tensor fast(Shape{2, 3, 5, 11}), ref(Shape{2, 3, 5, 11});
        contractProduct(q, {0, 1, 2, 3}, k, {0, 1, 4, 3}, fast,
                        {0, 1, 2, 4});
        naive::contract(q, {0, 1, 2, 3}, k, {0, 1, 4, 3}, ref,
                        {0, 1, 2, 4});
        EXPECT_EQ(fast.maxAbsDiff(ref), 0.0f);
    }
    // trans_a flavour (dW[n,k] += in[m,n] * go[m,k]).
    {
        const Tensor in = Tensor::random({13, 6}, rng);
        const Tensor go = Tensor::random({13, 10}, rng);
        Tensor fast(Shape{6, 10}), ref(Shape{6, 10});
        contractProduct(in, {2, 0}, go, {2, 1}, fast, {0, 1});
        naive::contract(in, {2, 0}, go, {2, 1}, ref, {0, 1});
        EXPECT_EQ(fast.maxAbsDiff(ref), 0.0f);
    }
    // A shape the fast path must NOT take (out-of-order output
    // labels): the specialized-inner-loop fallback must still match.
    {
        const Tensor a = Tensor::random({4, 6}, rng);
        const Tensor b = Tensor::random({6, 5}, rng);
        Tensor fast(Shape{5, 4}), ref(Shape{5, 4});
        contractProduct(a, {0, 1}, b, {1, 2}, fast, {2, 0});
        naive::contract(a, {0, 1}, b, {1, 2}, ref, {2, 0});
        EXPECT_EQ(fast.maxAbsDiff(ref), 0.0f);
    }
    // Outer product (no contracted label) also falls back.
    {
        const Tensor a = Tensor::random({3}, rng);
        const Tensor b = Tensor::random({4}, rng);
        Tensor fast(Shape{3, 4}), ref(Shape{3, 4});
        contractProduct(a, {0}, b, {1}, fast, {0, 1});
        naive::contract(a, {0}, b, {1}, ref, {0, 1});
        EXPECT_EQ(fast.maxAbsDiff(ref), 0.0f);
    }
}

TEST(TensorSlice, FastPathsMatchElementwiseSemantics)
{
    Rng rng(16);
    const Tensor t = Tensor::random({4, 6, 8}, rng);

    // Whole-tensor slice: single memcpy path.
    const Tensor whole = t.slice({0, 0, 0}, {4, 6, 8});
    EXPECT_EQ(whole.maxAbsDiff(t), 0.0f);

    // Innermost dims complete: rows collapse into one run per outer
    // index. Verify against at() indexing.
    const Tensor mid = t.slice({1, 0, 0}, {2, 6, 8});
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t j = 0; j < 6; ++j)
            for (std::int64_t l = 0; l < 8; ++l)
                EXPECT_EQ(mid.at({i, j, l}), t.at({i + 1, j, l}));

    // General strided slice.
    const Tensor gen = t.slice({1, 2, 3}, {2, 3, 4});
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t j = 0; j < 3; ++j)
            for (std::int64_t l = 0; l < 4; ++l)
                EXPECT_EQ(gen.at({i, j, l}), t.at({i + 1, j + 2, l + 3}));

    // Round-trip through assignSlice (both run-collapsed and strided).
    Tensor dst(Shape{4, 6, 8});
    dst.assignSlice({1, 0, 0}, mid);
    dst.assignSlice({1, 2, 3}, gen);
    for (std::int64_t j = 0; j < 6; ++j)
        for (std::int64_t l = 0; l < 8; ++l)
            EXPECT_EQ(dst.at({2, j, l}), t.at({2, j, l}));
    EXPECT_EQ(dst.at({0, 0, 0}), 0.0f);
}

TEST(BufferPool, ReusesExactSizeBuffers)
{
    BufferPool &pool = BufferPool::global();
    pool.trim();
    pool.resetStats();

    { Tensor a(Shape{32, 32}); } // released to the pool
    { Tensor b(Shape{32, 32}); } // must be a pool hit
    const BufferPoolStats st = pool.stats();
    EXPECT_GE(st.acquires, 2);
    EXPECT_GE(st.poolHits, 1);
    EXPECT_GE(st.bytesRetained, 32 * 32 * 4);

    pool.trim();
    EXPECT_EQ(pool.stats().bytesRetained, 0);
}

TEST(BufferPool, RecycledTensorsAreZeroed)
{
    BufferPool::global().trim();
    {
        Tensor dirty = Tensor::full({64}, 3.5f);
    }
    // Reuses the buffer that held 3.5f everywhere; Tensor(Shape)
    // guarantees zero initialization regardless.
    Tensor clean(Shape{64});
    for (std::int64_t i = 0; i < 64; ++i)
        EXPECT_EQ(clean.data()[i], 0.0f);
}

TEST(BufferPool, UninitializedSkipsZeroFillButIsWritable)
{
    Tensor t = Tensor::uninitialized({8, 8});
    ASSERT_EQ(t.numel(), 64);
    t.zero();
    EXPECT_EQ(t.maxAbsDiff(Tensor(Shape{8, 8})), 0.0f);
}

TEST(BufferPool, WorkspaceDrawsFromPool)
{
    BufferPool &pool = BufferPool::global();
    pool.trim();
    pool.resetStats();
    {
        Workspace w(1024);
        ASSERT_NE(w.data(), nullptr);
        w.data()[0] = 1.0f;
        w.data()[1023] = 2.0f;
    }
    {
        Workspace w2(1024);
        (void)w2;
    }
    EXPECT_GE(pool.stats().poolHits, 1);
}

} // namespace
} // namespace primepar
