/**
 * @file
 * Functional equivalence tests: partitioned SPMD execution must match
 * single-device training exactly for every sequence in the space —
 * the operational proof of the paper's Sec. 3.3 claims.
 */

#include <gtest/gtest.h>

#include "partition/space.hh"
#include "runtime/codec.hh"
#include "runtime/errors.hh"
#include "runtime/spmd_executor.hh"
#include "runtime/transport.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "tensor/buffer_pool.hh"
#include "tensor/ops.hh"

namespace primepar {
namespace {

std::map<std::string, Tensor>
linearInputs(const OpSpec &op, std::uint64_t seed)
{
    Rng rng(seed);
    std::map<std::string, Tensor> inputs;
    inputs["I"] = Tensor::random(
        Shape{op.dims[0].size, op.dims[1].size, op.dims[2].size}, rng);
    inputs["W"] = Tensor::random(
        Shape{op.dims[2].size, op.dims[3].size}, rng);
    inputs["dO"] = Tensor::random(
        Shape{op.dims[0].size, op.dims[1].size, op.dims[3].size}, rng);
    return inputs;
}

void
expectResultsMatch(const TrainStepResult &got, const TrainStepResult &ref,
                   const std::string &context)
{
    EXPECT_TRUE(got.output.allClose(ref.output, 1e-3f, 1e-4f))
        << context << ": forward output mismatch, max diff "
        << got.output.maxAbsDiff(ref.output);
    EXPECT_TRUE(got.d_input.allClose(ref.d_input, 1e-3f, 1e-4f))
        << context << ": dI mismatch, max diff "
        << got.d_input.maxAbsDiff(ref.d_input);
    if (ref.d_weight.numel() > 0) {
        EXPECT_TRUE(got.d_weight.allClose(ref.d_weight, 1e-3f, 1e-4f))
            << context << ": dW mismatch, max diff "
            << got.d_weight.maxAbsDiff(ref.d_weight);
    }
}

TEST(SpmdExecutor, ReferenceMatchesHandwrittenKernels)
{
    const OpSpec op = makeLinearOp("fc", 2, 4, 6, 8);
    const auto inputs = linearInputs(op, 1);
    const auto ref = referenceTrainStep(op, inputs);

    const Tensor o = linearForward(inputs.at("I"), inputs.at("W"));
    const Tensor di = linearBackward(inputs.at("dO"), inputs.at("W"));
    const Tensor dw = linearGradient(inputs.at("I"), inputs.at("dO"));
    EXPECT_TRUE(ref.output.allClose(o));
    EXPECT_TRUE(ref.d_input.allClose(di));
    EXPECT_TRUE(ref.d_weight.allClose(dw));
}

class LinearSpaceEquivalence : public ::testing::TestWithParam<int>
{};

TEST_P(LinearSpaceEquivalence, EverySequenceMatchesReference)
{
    const int num_bits = GetParam();
    const OpSpec op = makeLinearOp("fc", 4, 8, 8, 8);
    const auto inputs = linearInputs(op, 42);
    const auto ref = referenceTrainStep(op, inputs);

    for (const auto &seq : enumerateSequences(op, num_bits)) {
        SpmdOpExecutor exec(op, seq, num_bits);
        const auto got = exec.run(inputs);
        expectResultsMatch(got, ref, seq.toString(op));
    }
}

INSTANTIATE_TEST_SUITE_P(Bits, LinearSpaceEquivalence,
                         ::testing::Values(1, 2, 3, 4));

TEST(SpmdExecutor, PSquareK2On16Devices)
{
    const OpSpec op = makeLinearOp("fc", 2, 8, 8, 8);
    const auto inputs = linearInputs(op, 7);
    const auto ref = referenceTrainStep(op, inputs);

    PartitionSeq seq({PartitionStep::pSquare(2)});
    SpmdOpExecutor exec(op, seq, 4);
    const auto got = exec.run(inputs);
    expectResultsMatch(got, ref, "P4x4");

    // Feature 1 at runtime: not a single all-reduce was needed.
    EXPECT_EQ(exec.stats().allReduceCount, 0);
    EXPECT_EQ(exec.stats().allReduceElements, 0);
    EXPECT_GT(exec.stats().ringElements, 0);
}

TEST(SpmdExecutor, MegatronRowParallelNeedsAllReduce)
{
    const OpSpec op = makeLinearOp("fc", 4, 8, 8, 8);
    const auto inputs = linearInputs(op, 9);
    PartitionSeq seq({PartitionStep::byDim(2), PartitionStep::byDim(2)});
    SpmdOpExecutor exec(op, seq, 2);
    const auto got = exec.run(inputs);
    expectResultsMatch(got, referenceTrainStep(op, inputs), "N,N");
    EXPECT_GT(exec.stats().allReduceElements, 0);
    EXPECT_EQ(exec.stats().ringElements, 0);
}

TEST(SpmdExecutor, SgdUpdateIsLocalAndCorrect)
{
    const OpSpec op = makeLinearOp("fc", 4, 8, 8, 8);
    const auto inputs = linearInputs(op, 11);
    const auto ref = referenceTrainStep(op, inputs);

    for (const auto &seq : enumerateSequences(op, 3)) {
        SpmdOpExecutor exec(op, seq, 3);
        exec.run(inputs);
        const Tensor updated = exec.sgdUpdateAndGather(0.1);
        Tensor expect = inputs.at("W");
        Tensor delta = ref.d_weight;
        delta.scale(-0.1f);
        expect.add(delta);
        EXPECT_TRUE(updated.allClose(expect, 1e-3f, 1e-4f))
            << seq.toString(op);
    }
}

TEST(SpmdExecutor, BatchedMatmulByDimPartitions)
{
    // Attention-score-like matmul over 4 devices, head partitioned.
    const OpSpec op = makeBatchedMatmulOp(
        "qk", {"B", "Hd", "M", "M2", "E"}, {2, 4, 4, 4, 8},
        {0, 1, 2, 4}, {0, 1, 3, 4}, {0, 1, 2, 3}, 4);

    Rng rng(13);
    std::map<std::string, Tensor> inputs;
    inputs["A"] = Tensor::random(Shape{2, 4, 4, 8}, rng);
    inputs["Bm"] = Tensor::random(Shape{2, 4, 4, 8}, rng);
    inputs["dO"] = Tensor::random(Shape{2, 4, 4, 4}, rng);
    const auto ref = referenceTrainStep(op, inputs);

    for (const auto &seq : enumerateSequences(op, 2)) {
        SpmdOpExecutor exec(op, seq, 2);
        const auto got = exec.run(inputs);
        EXPECT_TRUE(got.output.allClose(ref.output, 1e-3f, 1e-4f))
            << seq.toString(op);
        EXPECT_TRUE(got.d_input.allClose(ref.d_input, 1e-3f, 1e-4f))
            << seq.toString(op);
    }
}

TEST(SpmdExecutor, MatmulContractedPartitionAllReduces)
{
    // Partitioning M2 (contracted in forward for the context matmul
    // A x V) must still give exact results via all-reduce.
    const OpSpec op = makeBatchedMatmulOp(
        "av", {"B", "Hd", "M", "M2", "E"}, {2, 2, 4, 8, 4},
        {0, 1, 2, 3}, {0, 1, 3, 4}, {0, 1, 2, 4}, 4);
    Rng rng(17);
    std::map<std::string, Tensor> inputs;
    inputs["A"] = Tensor::random(Shape{2, 2, 4, 8}, rng);
    inputs["Bm"] = Tensor::random(Shape{2, 2, 8, 4}, rng);
    inputs["dO"] = Tensor::random(Shape{2, 2, 4, 4}, rng);
    const auto ref = referenceTrainStep(op, inputs);

    PartitionSeq seq({PartitionStep::byDim(3)}); // M2
    SpmdOpExecutor exec(op, seq, 1);
    const auto got = exec.run(inputs);
    EXPECT_TRUE(got.output.allClose(ref.output, 1e-3f, 1e-4f));
    EXPECT_GT(exec.stats().allReduceElements, 0);
}

TEST(SpmdExecutor, SoftmaxPartitionedRows)
{
    const OpSpec op = makeSoftmaxOp("sm", {"B", "M", "S"}, {4, 8, 8});
    Rng rng(19);
    std::map<std::string, Tensor> inputs;
    inputs["I"] = Tensor::random(Shape{4, 8, 8}, rng);
    inputs["dO"] = Tensor::random(Shape{4, 8, 8}, rng);
    const auto ref = referenceTrainStep(op, inputs);

    for (const auto &seq : enumerateSequences(op, 2)) {
        SpmdOpExecutor exec(op, seq, 2);
        const auto got = exec.run(inputs);
        EXPECT_TRUE(got.output.allClose(ref.output, 1e-3f, 1e-4f))
            << seq.toString(op);
        EXPECT_TRUE(got.d_input.allClose(ref.d_input, 1e-3f, 1e-4f))
            << seq.toString(op);
        EXPECT_EQ(exec.stats().allReduceElements, 0);
    }
}

TEST(SpmdExecutor, GeluPartitioned)
{
    const OpSpec op =
        makeElementwiseOp("gelu", {"B", "M", "F"}, {4, 8, 8});
    Rng rng(23);
    std::map<std::string, Tensor> inputs;
    inputs["I"] = Tensor::random(Shape{4, 8, 8}, rng);
    inputs["dO"] = Tensor::random(Shape{4, 8, 8}, rng);
    const auto ref = referenceTrainStep(op, inputs);

    for (const auto &seq : enumerateSequences(op, 3)) {
        SpmdOpExecutor exec(op, seq, 3);
        const auto got = exec.run(inputs);
        EXPECT_TRUE(got.output.allClose(ref.output, 1e-3f, 1e-4f))
            << seq.toString(op);
        EXPECT_TRUE(got.d_input.allClose(ref.d_input, 1e-3f, 1e-4f))
            << seq.toString(op);
    }
}

TEST(SpmdExecutor, ResidualAddPartitioned)
{
    const OpSpec op = makeAddOp("res", {"B", "M", "H"}, {4, 8, 8});
    Rng rng(29);
    std::map<std::string, Tensor> inputs;
    inputs["A"] = Tensor::random(Shape{4, 8, 8}, rng);
    inputs["Bt"] = Tensor::random(Shape{4, 8, 8}, rng);
    inputs["dO"] = Tensor::random(Shape{4, 8, 8}, rng);
    const auto ref = referenceTrainStep(op, inputs);

    for (const auto &seq : enumerateSequences(op, 2)) {
        SpmdOpExecutor exec(op, seq, 2);
        const auto got = exec.run(inputs);
        EXPECT_TRUE(got.output.allClose(ref.output, 1e-4f, 1e-5f))
            << seq.toString(op);
        EXPECT_TRUE(got.d_input.allClose(ref.d_input, 1e-4f, 1e-5f))
            << seq.toString(op);
    }
}

TEST(SpmdExecutor, ChainedMlpTrainingMatchesReference)
{
    // End-to-end chain fc1 -> gelu -> fc2: forward activations and
    // backward gradients thread through three partitioned executors
    // with different strategies, and the whole chain must match the
    // single-device reference including the gelu nonlinearity.
    const OpSpec fc1 = makeLinearOp("fc1", 2, 4, 8, 16);
    const OpSpec act = makeElementwiseOp("gelu", {"B", "M", "F"},
                                         {2, 4, 16});
    const OpSpec fc2 = makeLinearOp("fc2", 2, 4, 16, 8);

    Rng rng(77);
    const Tensor x = Tensor::random(Shape{2, 4, 8}, rng);
    const Tensor w1 = Tensor::random(Shape{8, 16}, rng);
    const Tensor w2 = Tensor::random(Shape{16, 8}, rng);
    const Tensor dy = Tensor::random(Shape{2, 4, 8}, rng);

    // Reference chain.
    const Tensor h1 = linearForward(x, w1);
    const Tensor h2 = gelu(h1);
    const Tensor y = linearForward(h2, w2);
    const Tensor dh2 = linearBackward(dy, w2);
    const Tensor dw2 = linearGradient(h2, dy);
    const Tensor dh1 = geluBackward(h1, dh2);
    const Tensor dx = linearBackward(dh1, w1);
    const Tensor dw1 = linearGradient(x, dh1);

    // Partitioned chain over 4 devices, mixed strategies.
    const int bits = 2;
    SpmdOpExecutor e1(fc1, PartitionSeq({PartitionStep::pSquare(1)}),
                      bits);
    SpmdOpExecutor e2(act,
                      PartitionSeq({PartitionStep::byDim(0),
                                    PartitionStep::byDim(2)}),
                      bits);
    SpmdOpExecutor e3(fc2,
                      PartitionSeq({PartitionStep::byDim(2),
                                    PartitionStep::byDim(3)}),
                      bits);

    // Forward sweep (upstream gradients filled in on the backward
    // sweep; zero placeholders keep the forward outputs exact).
    std::map<std::string, Tensor> in1{
        {"I", x}, {"W", w1}, {"dO", Tensor(Shape{2, 4, 16})}};
    const Tensor h1_p = e1.run(in1).output;
    ASSERT_TRUE(h1_p.allClose(h1, 1e-4f, 1e-5f));

    std::map<std::string, Tensor> in2{
        {"I", h1_p}, {"dO", Tensor(Shape{2, 4, 16})}};
    const Tensor h2_p = e2.run(in2).output;
    ASSERT_TRUE(h2_p.allClose(h2, 1e-4f, 1e-5f));

    // fc2 sees the real upstream gradient; its dI feeds gelu, whose
    // dI feeds fc1.
    std::map<std::string, Tensor> in3{
        {"I", h2_p}, {"W", w2}, {"dO", dy}};
    const auto r3 = e3.run(in3);
    ASSERT_TRUE(r3.output.allClose(y, 1e-3f, 1e-4f));
    ASSERT_TRUE(r3.d_weight.allClose(dw2, 1e-3f, 1e-4f));
    ASSERT_TRUE(r3.d_input.allClose(dh2, 1e-3f, 1e-4f));

    in2["dO"] = r3.d_input;
    const auto r2 = e2.run(in2);
    ASSERT_TRUE(r2.d_input.allClose(dh1, 1e-3f, 1e-4f));

    in1["dO"] = r2.d_input;
    const auto r1 = e1.run(in1);
    EXPECT_TRUE(r1.d_input.allClose(dx, 1e-3f, 1e-4f));
    EXPECT_TRUE(r1.d_weight.allClose(dw1, 1e-3f, 1e-4f));
}

TEST(SpmdExecutor, EmbeddingVocabAndTemporalPartitions)
{
    // Embedding as one-hot contraction: vocab-parallel (Megatron) and
    // spatial-temporal partitions must reproduce the lookup and the
    // scatter-add table gradient exactly.
    const OpSpec op = makeEmbeddingOp("embed", 2, 4, 16, 8);
    Rng rng(41);
    Tensor onehot(Shape{2, 4, 16});
    for (std::int64_t b = 0; b < 2; ++b)
        for (std::int64_t m = 0; m < 4; ++m)
            onehot.at({b, m,
                       static_cast<std::int64_t>(rng.below(16))}) = 1.0f;
    std::map<std::string, Tensor> inputs;
    inputs["I"] = onehot;
    inputs["W"] = Tensor::random(Shape{16, 8}, rng);
    inputs["dO"] = Tensor::random(Shape{2, 4, 8}, rng);
    const auto ref = referenceTrainStep(op, inputs);

    for (const auto &seq : enumerateSequences(op, 2)) {
        SpmdOpExecutor exec(op, seq, 2);
        const auto got = exec.run(inputs);
        EXPECT_TRUE(got.output.allClose(ref.output, 1e-4f, 1e-5f))
            << seq.toString(op);
        EXPECT_TRUE(got.d_weight.allClose(ref.d_weight, 1e-4f, 1e-5f))
            << seq.toString(op);
    }

    // Vocab-parallel specifically: forward all-reduce, as Megatron's
    // VocabParallelEmbedding issues.
    PartitionSeq vocab_par(
        {PartitionStep::byDim(2), PartitionStep::byDim(2)});
    DsiTable dsi(op, vocab_par, 2);
    EXPECT_TRUE(derivePassComm(op, vocab_par, dsi, 0)
                    .allReduce.has_value());
}

TEST(SpmdExecutorErrors, MissingInputThrowsStructuredError)
{
    const OpSpec op = makeLinearOp("fc", 2, 4, 4, 4);
    SpmdOpExecutor exec(op, PartitionSeq({PartitionStep::byDim(0)}), 1);
    std::map<std::string, Tensor> inputs; // empty
    try {
        exec.run(inputs);
        FAIL() << "expected InputError";
    } catch (const InputError &err) {
        EXPECT_EQ(err.op, "fc");
        EXPECT_EQ(err.tensor, "I");
        EXPECT_TRUE(err.actualShape.empty());
        EXPECT_EQ(err.expectedShape, (std::vector<std::int64_t>{2, 4, 4}));
        EXPECT_NE(std::string(err.what()).find("missing input tensor"),
                  std::string::npos);
    }
}

TEST(SpmdExecutorErrors, ShapeMismatchThrowsStructuredError)
{
    const OpSpec op = makeLinearOp("fc", 2, 4, 4, 4);
    SpmdOpExecutor exec(op, PartitionSeq({PartitionStep::byDim(0)}), 1);
    std::map<std::string, Tensor> inputs;
    inputs["I"] = Tensor(Shape{2, 4, 8}); // wrong hidden size
    inputs["W"] = Tensor(Shape{4, 4});
    inputs["dO"] = Tensor(Shape{2, 4, 4});
    try {
        exec.run(inputs);
        FAIL() << "expected InputError";
    } catch (const InputError &err) {
        EXPECT_EQ(err.tensor, "I");
        EXPECT_EQ(err.actualShape, (std::vector<std::int64_t>{2, 4, 8}));
        EXPECT_EQ(err.expectedShape, (std::vector<std::int64_t>{2, 4, 4}));
    }
}

TEST(SpmdExecutorDeath, SgdBeforeRunPanics)
{
    const OpSpec op = makeLinearOp("fc", 2, 4, 4, 4);
    SpmdOpExecutor exec(op, PartitionSeq({PartitionStep::byDim(0)}), 1);
    EXPECT_DEATH(exec.sgdUpdateAndGather(0.1), "run\\(\\) must precede");
}

TEST(SpmdExecutorDeath, InvalidSequencePanics)
{
    const OpSpec op = makeSoftmaxOp("sm", {"B", "S"}, {4, 8});
    EXPECT_DEATH(
        SpmdOpExecutor(op, PartitionSeq({PartitionStep::pSquare(1)}), 2),
        "PSquare on incompatible operator");
}

TEST(SpmdExecutor, RingTrafficScalesWithTemporalSteps)
{
    // Larger k moves more, smaller slices more often; with fixed
    // device count the ring totals are exactly predictable.
    const OpSpec op = makeLinearOp("fc", 2, 16, 16, 16);
    const auto inputs = linearInputs(op, 31);

    PartitionSeq p2({PartitionStep::pSquare(1)});
    SpmdOpExecutor e2(op, p2, 2);
    e2.run(inputs);
    PartitionSeq p4({PartitionStep::pSquare(2)});
    SpmdOpExecutor e4(op, p4, 4);
    e4.run(inputs);

    EXPECT_GT(e2.stats().ringElements, 0);
    EXPECT_GT(e4.stats().ringElements, 0);
    // No all-reduce either way.
    EXPECT_EQ(e2.stats().allReduceElements, 0);
    EXPECT_EQ(e4.stats().allReduceElements, 0);
}

TEST(SpmdExecutor, AsyncOverlapIsBitIdenticalToSync)
{
    // The double-buffered pipeline (ring shifts for step t+1 posted
    // while step t computes) must not perturb a single bit relative
    // to the strictly step-synchronous path — with and without a
    // transport, serial and threaded.
    const OpSpec op = makeLinearOp("fc", 2, 8, 8, 8);
    const auto inputs = linearInputs(op, 91);
    const PartitionSeq seq({PartitionStep::pSquare(2)}); // ring-heavy

    for (const bool use_transport : {false, true}) {
        for (const int threads : {1, 2}) {
            ThreadPool pool(2);
            InProcessTransport transport({}, nullptr, nullptr);

            SpmdOpExecutor sync_exec(op, seq, 4,
                                     /*overlap_comm=*/false);
            SpmdOpExecutor async_exec(op, seq, 4);
            if (threads > 1) {
                sync_exec.setThreadPool(&pool);
                async_exec.setThreadPool(&pool);
            }
            if (use_transport) {
                sync_exec.setTransport(&transport);
                async_exec.setTransport(&transport);
            }
            const auto want = sync_exec.run(inputs);
            const auto got = async_exec.run(inputs);

            const std::string ctx =
                std::string("transport=") +
                (use_transport ? "yes" : "no") +
                " threads=" + std::to_string(threads);
            EXPECT_EQ(got.output.maxAbsDiff(want.output), 0.0f) << ctx;
            EXPECT_EQ(got.d_input.maxAbsDiff(want.d_input), 0.0f)
                << ctx;
            EXPECT_EQ(got.d_weight.maxAbsDiff(want.d_weight), 0.0f)
                << ctx;
            // Same logical traffic either way.
            EXPECT_EQ(async_exec.stats().ringElements,
                      sync_exec.stats().ringElements)
                << ctx;
        }
    }
}

TEST(BufferPool, InFlightGenerationsNeverAlias)
{
    // The async executor holds two generations live at once: step t's
    // committed tensors and step t+1's staged receives. Same-size
    // acquires while both are outstanding must be distinct storage.
    BufferPool pool;
    const std::int64_t n = 256;
    float *a = pool.acquire(n);
    float *b = pool.acquire(n);
    ASSERT_NE(a, b);
    for (std::int64_t i = 0; i < n; ++i) {
        a[i] = 1.0f;
        b[i] = 2.0f;
    }
    for (std::int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(a[i], 1.0f);
        EXPECT_EQ(b[i], 2.0f);
    }
    pool.release(a, n);
    pool.release(b, n);
    // Recycled, the two generations still never share storage.
    float *c = pool.acquire(n);
    float *d = pool.acquire(n);
    EXPECT_NE(c, d);
    EXPECT_TRUE((c == a || c == b) && (d == a || d == b));
    pool.release(c, n);
    pool.release(d, n);
}

TEST(BufferPool, RecycledBuffersAreFullyOverwrittenByDecode)
{
    // A staged receive lands in a recycled pool buffer; the decode
    // contract is that every element is written, so stale contents of
    // the previous generation can never leak through.
    BufferPool pool;
    const std::int64_t n = 300; // straddles a block boundary
    float *buf = pool.acquire(n);
    for (std::int64_t i = 0; i < n; ++i)
        buf[i] = -404.0f; // stale previous-generation contents
    pool.release(buf, n);
    float *recycled = pool.acquire(n);
    ASSERT_EQ(recycled, buf); // exact-size free list recycles it

    Rng rng(92);
    const Tensor src = Tensor::random(Shape{n}, rng);
    std::vector<std::uint8_t> wire(codecBound(CodecKind::Pack, n));
    const std::size_t bytes =
        codecEncode(CodecKind::Pack, src.data(), n, wire.data());
    codecDecode(CodecKind::Pack, wire.data(), bytes, recycled, n);
    for (std::int64_t i = 0; i < n; ++i)
        EXPECT_EQ(recycled[i], src.data()[i]) << "i=" << i;
    pool.release(recycled, n);
}

} // namespace
} // namespace primepar
