/**
 * @file
 * Tests of the profiler and the analytic cost model, including the
 * key fidelity property: the cost model's strategy ranking agrees
 * with the event simulator's measurements.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "cost/cost_model.hh"
#include "cost/profiler.hh"
#include "partition/space.hh"
#include "sim/model_sim.hh"

namespace primepar {
namespace {

TEST(Profiler, FitsAreNearPerfectOnLinearSimulator)
{
    const auto topo = ClusterTopology::paperCluster(8);
    const auto models = profileModels(topo);
    const auto q = profileQuality(topo, models);
    EXPECT_GT(q.worstAllReduceR2, 0.999);
    EXPECT_GT(q.ringHopR2, 0.999);
    EXPECT_GT(q.matmulR2, 0.999);
}

TEST(Profiler, AllReduceModelsCoverAllPatterns)
{
    const auto topo = ClusterTopology::paperCluster(32);
    const auto models = profileModels(topo);
    // 8 nodes x 4 GPUs: inter bits 0..3, intra bits 0..2, minus empty.
    EXPECT_EQ(models.allReduce.size(), 4u * 3u - 1u);
    // Cross-node patterns are slower per byte.
    const auto intra = models.allReduce.at({0, 2});
    const auto inter = models.allReduce.at({2, 0});
    const double bytes = 64.0 * 1024 * 1024;
    EXPECT_GT(inter(bytes), intra(bytes));
}

TEST(CostModel, PSquareBeatsRowColumnOnBigLinear)
{
    // The core motivation: for a large linear over 4 intra-node
    // devices, P2x2 should cost less than any all-reduce strategy.
    const auto topo = ClusterTopology::paperCluster(4);
    const CostModel cm(topo, profileModels(topo));
    const OpSpec op = makeLinearOp("fc", 8, 2048, 12288, 49152);

    const OpPlan psq(op, PartitionSeq({PartitionStep::pSquare(1)}), 2);
    const OpPlan row(op,
                     PartitionSeq({PartitionStep::byDim(2),
                                   PartitionStep::byDim(2)}),
                     2);
    const IntraCost c_psq = cm.intraCost(psq);
    const IntraCost c_row = cm.intraCost(row);
    EXPECT_EQ(c_psq.allReduceUs, 0.0);
    EXPECT_GT(c_row.allReduceUs, 0.0);
    EXPECT_LT(c_psq.latencyUs, c_row.latencyUs);
    EXPECT_LT(c_psq.memoryBytes, c_row.memoryBytes);
}

TEST(CostModel, AlphaWeightsMemory)
{
    const auto topo = ClusterTopology::paperCluster(4);
    const auto models = profileModels(topo);
    const CostModel no_alpha(topo, models, 0.0);
    const CostModel with_alpha(topo, models, 10.0);
    const OpSpec op = makeLinearOp("fc", 8, 1024, 1024, 1024);
    const OpPlan plan(op, PartitionSeq({PartitionStep::byDim(1),
                                        PartitionStep::byDim(1)}),
                      2);
    EXPECT_EQ(no_alpha.intraCost(plan).weighted,
              no_alpha.intraCost(plan).latencyUs);
    EXPECT_GT(with_alpha.intraCost(plan).weighted,
              with_alpha.intraCost(plan).latencyUs);
}

TEST(CostModel, TrafficElementsMatchesEq9)
{
    // Cross-check against the full redistribution planner.
    const OpSpec op = makeLinearOp("fc", 4, 8, 8, 8);
    const EdgeDimMap map{0, 1, 3};
    const auto space = enumerateSequences(op, 2);
    for (const auto &a : space) {
        DsiTable da(op, a, 2);
        const auto have = layoutOf(op, da, {op.outputTensor, false},
                                   Phase::Forward, da.steps() - 1, map,
                                   {4, 8, 8});
        for (const auto &b : space) {
            DsiTable db(op, b, 2);
            const auto need =
                layoutOf(op, db, {0, false}, Phase::Forward, 0,
                         EdgeDimMap{0, 1, 2}, {4, 8, 8});
            const auto plan = planRedistribution(have, need);
            EXPECT_EQ(CostModel::trafficElements(have, need),
                      plan.totalElements)
                << a.toString(op) << " -> " << b.toString(op);
        }
    }
}

TEST(CostModel, TrafficSplitMatchesFullPlan)
{
    // The prepared-source fast path must agree exactly with the full
    // redistribution planner on both link classes, across the whole
    // space including replicated producers.
    const OpSpec op = makeLinearOp("fc", 8, 8, 8, 8);
    const ClusterTopology topo = ClusterTopology::paperCluster(8);
    const CostModel cm(topo, profileModels(topo));
    const EdgeDimMap map{0, 1, 3};
    const auto space = enumerateSequences(op, 3);
    for (const auto &a : space) {
        DsiTable da(op, a, 3);
        const auto have = layoutOf(op, da, {op.outputTensor, false},
                                   Phase::Forward, da.steps() - 1, map,
                                   {8, 8, 8});
        const auto prepared = CostModel::prepareSource(have);
        for (std::size_t bi = 0; bi < space.size(); bi += 7) {
            DsiTable db(op, space[bi], 3);
            const auto need =
                layoutOf(op, db, {0, false}, Phase::Forward, 0,
                         EdgeDimMap{0, 1, 2}, {8, 8, 8});
            const auto fast = cm.trafficSplit(prepared, need);

            const RedistPlan plan =
                planRedistribution(have, need, &topo);
            std::int64_t intra = 0, inter = 0;
            for (const auto &tr : plan.transfers) {
                if (topo.sameNode(tr.src, tr.dst))
                    intra += tr.elements;
                else
                    inter += tr.elements;
            }
            EXPECT_EQ(fast.intraNode, intra)
                << a.toString(op) << " -> " << space[bi].toString(op);
            EXPECT_EQ(fast.interNode, inter);
        }
    }
}

TEST(CostModel, IntraCheaperThanInterRedistribution)
{
    const ClusterTopology topo = ClusterTopology::paperCluster(8);
    const CostModel cm(topo, profileModels(topo));
    const double bytes = 64.0 * 1024 * 1024;
    EXPECT_LT(cm.redistLatencyUs(bytes, 0.0),
              cm.redistLatencyUs(0.0, bytes));
    EXPECT_EQ(cm.redistLatencyUs(0.0, 0.0), 0.0);
}

TEST(CostModel, RankingAgreesWithSimulator)
{
    // Fidelity: over the whole space of a realistic linear operator,
    // the analytic cost and the simulated latency must correlate —
    // in particular the cost-optimal strategy must be near-optimal
    // under simulation.
    const auto topo = ClusterTopology::paperCluster(8);
    const CostModel cm(topo, profileModels(topo));
    const OpSpec op = makeLinearOp("fc", 8, 2048, 4096, 16384);

    const auto space = enumerateSequences(op, 3);
    std::vector<double> model_cost, sim_cost;
    for (const auto &seq : space) {
        const OpPlan plan(op, seq, 3);
        model_cost.push_back(cm.intraCost(plan).latencyUs);
        SimContext ctx(topo);
        for (Phase ph :
             {Phase::Forward, Phase::Backward, Phase::Gradient})
            simulateOpPhase(ctx, plan, ph);
        sim_cost.push_back(ctx.makespan());
    }

    const std::size_t best_model =
        std::min_element(model_cost.begin(), model_cost.end()) -
        model_cost.begin();
    const double best_sim =
        *std::min_element(sim_cost.begin(), sim_cost.end());
    // The strategy the model picks is within 20% of the simulator's
    // optimum.
    EXPECT_LT(sim_cost[best_model], 1.2 * best_sim)
        << "model picked " << space[best_model].toString(op);

    // Rank correlation (Spearman-lite): top-10% by model overlaps
    // top-25% by simulator.
    std::vector<std::size_t> by_model(space.size()), by_sim(space.size());
    for (std::size_t i = 0; i < space.size(); ++i)
        by_model[i] = by_sim[i] = i;
    std::sort(by_model.begin(), by_model.end(), [&](auto x, auto y) {
        return model_cost[x] < model_cost[y];
    });
    std::sort(by_sim.begin(), by_sim.end(), [&](auto x, auto y) {
        return sim_cost[x] < sim_cost[y];
    });
    const std::size_t k = std::max<std::size_t>(1, space.size() / 10);
    const std::size_t k4 = std::max<std::size_t>(k, space.size() / 4);
    int hits = 0;
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k4; ++j) {
            if (by_model[i] == by_sim[j]) {
                ++hits;
                break;
            }
        }
    }
    EXPECT_GE(hits, static_cast<int>(k / 2));
}

TEST(CostModel, LayerNormSplitFeatureCostsExpectationExchange)
{
    const auto topo = ClusterTopology::paperCluster(4);
    const CostModel cm(topo, profileModels(topo));
    const OpSpec op = makeLayerNormOp("ln", 8, 2048, 4096);

    const OpPlan row_split(
        op, PartitionSeq({PartitionStep::byDim(1),
                          PartitionStep::byDim(1)}),
        2);
    const OpPlan feat_split(
        op, PartitionSeq({PartitionStep::byDim(2),
                          PartitionStep::byDim(2)}),
        2);
    // Splitting rows: gradient all-reduce of gamma only. Splitting the
    // normalized dim additionally pays the expectation exchange.
    const IntraCost c_row = cm.intraCost(row_split);
    const IntraCost c_feat = cm.intraCost(feat_split);
    EXPECT_GT(c_feat.allReduceUs, 0.0);
    EXPECT_GT(c_row.allReduceUs, 0.0);
}

} // namespace
} // namespace primepar
