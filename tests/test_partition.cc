/**
 * @file
 * Unit and property tests for the partition core: operator specs,
 * partition sequences, DSI evaluation (Alg. 1 / Eqs. 2-6), space
 * enumeration and the feature verification of Sec. 3.3.
 */

#include <gtest/gtest.h>

#include "partition/alignment.hh"
#include "partition/dsi.hh"
#include "partition/op_spec.hh"
#include "partition/partition_step.hh"
#include "partition/space.hh"

namespace primepar {
namespace {

OpSpec
smallLinear()
{
    return makeLinearOp("fc", 8, 16, 16, 16);
}

/** Device linear index on the 2^k x 2^k square: bits interleave r, c. */
std::int64_t
deviceFromRC(int k, std::int64_t r, std::int64_t c)
{
    std::int64_t linear = 0;
    for (int j = 0; j < k; ++j) {
        const std::int64_t rb = (r >> (k - 1 - j)) & 1;
        const std::int64_t cb = (c >> (k - 1 - j)) & 1;
        linear = (linear << 2) | (rb << 1) | cb;
    }
    return linear;
}

TEST(OpSpec, LinearContractionStructure)
{
    const OpSpec op = smallLinear();
    ASSERT_EQ(op.passes.size(), 3u);
    // Forward contracts N (dim 2).
    EXPECT_EQ(op.passes[0].contracted, (std::vector<int>{2}));
    // Backward contracts K (dim 3).
    EXPECT_EQ(op.passes[1].contracted, (std::vector<int>{3}));
    // Gradient contracts B and M (dims 0, 1).
    EXPECT_EQ(op.passes[2].contracted, (std::vector<int>{0, 1}));
    EXPECT_TRUE(op.psquare.has_value());
    EXPECT_TRUE(op.tensors[1].isParameter);
}

TEST(OpSpec, PassFlops)
{
    const OpSpec op = smallLinear();
    // Forward flops = 2 * B*M*K (output) * N (contracted).
    EXPECT_DOUBLE_EQ(op.passFlops(op.passes[0]),
                     2.0 * 8 * 16 * 16 * 16);
}

TEST(OpSpec, BatchedMatmulDerivesContraction)
{
    // Attention score: A[B,H,M,E] x K[B,H,M2,E]^T -> O[B,H,M,M2].
    const OpSpec op = makeBatchedMatmulOp(
        "qk", {"B", "Hd", "M", "M2", "E"}, {4, 8, 32, 32, 64},
        {0, 1, 2, 4}, {0, 1, 3, 4}, {0, 1, 2, 3}, 4);
    ASSERT_EQ(op.passes.size(), 3u);
    EXPECT_EQ(op.passes[0].contracted, (std::vector<int>{4})); // E
    EXPECT_EQ(op.passes[1].contracted, (std::vector<int>{3})); // M2 (dA)
    EXPECT_EQ(op.passes[2].contracted, (std::vector<int>{2})); // M  (dB)
    EXPECT_FALSE(op.dims[4].partitionable); // head embed excluded
    EXPECT_FALSE(op.psquare.has_value());
}

TEST(OpSpec, SoftmaxLastDimNotPartitionable)
{
    const OpSpec op = makeSoftmaxOp("sm", {"B", "M", "S"}, {2, 4, 8});
    EXPECT_TRUE(op.dims[0].partitionable);
    EXPECT_FALSE(op.dims[2].partitionable);
}

TEST(OpSpec, RefNames)
{
    const OpSpec op = smallLinear();
    EXPECT_EQ(op.refName({1, true}), "dW");
    EXPECT_EQ(op.refName({0, false}), "I");
}

TEST(PartitionSeq, BitsAndTemporalSteps)
{
    PartitionSeq seq({PartitionStep::byDim(0), PartitionStep::pSquare(2),
                      PartitionStep::byDim(1)});
    EXPECT_EQ(seq.numBits(), 6);
    EXPECT_EQ(seq.temporalSteps(), 4);
    EXPECT_TRUE(seq.hasPSquare());
    EXPECT_EQ(seq.pSquareIndex(), 1);
}

TEST(PartitionSeq, SliceCounts)
{
    const OpSpec op = smallLinear();
    PartitionSeq seq({PartitionStep::byDim(2), PartitionStep::pSquare(1)});
    const auto slices = seq.sliceCounts(op);
    EXPECT_EQ(slices[0], 1); // B untouched
    EXPECT_EQ(slices[1], 2); // M via PSquare
    EXPECT_EQ(slices[2], 4); // N: ByDim then PSquare
    EXPECT_EQ(slices[3], 2); // K via PSquare
}

TEST(PartitionSeq, ValidateRejectsBadSequences)
{
    const OpSpec op = smallLinear();
    PartitionSeq two_psquares(
        {PartitionStep::pSquare(1), PartitionStep::pSquare(1)});
    EXPECT_FALSE(two_psquares.validate(op).empty());

    const OpSpec sm = makeSoftmaxOp("sm", {"B", "S"}, {4, 8});
    PartitionSeq on_softmax_dim({PartitionStep::byDim(1)});
    EXPECT_FALSE(on_softmax_dim.validate(sm).empty());
    PartitionSeq psquare_on_softmax({PartitionStep::pSquare(1)});
    EXPECT_FALSE(psquare_on_softmax.validate(sm).empty());

    // Over-partitioning a small dim.
    const OpSpec tiny = makeLinearOp("t", 2, 2, 2, 2);
    PartitionSeq over({PartitionStep::byDim(0), PartitionStep::byDim(0)});
    EXPECT_FALSE(over.validate(tiny).empty());
}

TEST(PartitionSeq, ParseRoundTripsToString)
{
    const OpSpec op = smallLinear();
    for (const char *text : {"M,N", "B,P2x2", "P2x2,K", "N,N,K"}) {
        const PartitionSeq seq = parseSequence(op, text);
        EXPECT_EQ(seq.toString(op), text);
    }
    // P4x4 consumes four bits.
    const OpSpec big = makeLinearOp("fc", 8, 64, 64, 64);
    const PartitionSeq p4 = parseSequence(big, "P4x4");
    EXPECT_EQ(p4.numBits(), 4);
    EXPECT_EQ(p4.temporalSteps(), 4);
}

TEST(PartitionSeqDeath, ParseRejectsBadInput)
{
    const OpSpec op = smallLinear();
    EXPECT_DEATH(parseSequence(op, "Q"), "no dimension");
    EXPECT_DEATH(parseSequence(op, "P3x3"), "bad PSquare token");
    EXPECT_DEATH(parseSequence(op, "P2x4"), "bad PSquare token");
    // Valid tokens but over-partitioned dim.
    const OpSpec tiny = makeLinearOp("t", 2, 2, 16, 16);
    EXPECT_DEATH(parseSequence(tiny, "B,B"), "invalid sequence");
}

TEST(PartitionSeq, ToStringMatchesPaperNotation)
{
    const OpSpec op = smallLinear();
    PartitionSeq seq({PartitionStep::byDim(1), PartitionStep::pSquare(1),
                      PartitionStep::byDim(2)});
    EXPECT_EQ(seq.toString(op), "M,P2x2,N");
}

TEST(Dsi, PaperFig3PartitionMThenN)
{
    // Fig. 3: partition M then N over 4 devices. Devices with d1 = 0
    // hold slice 0 of M; devices with d2 = 0 hold slice 0 of N.
    const OpSpec op = smallLinear();
    PartitionSeq seq({PartitionStep::byDim(1), PartitionStep::byDim(2)});
    DsiTable dsi(op, seq, 2);
    EXPECT_EQ(dsi.steps(), 1);
    for (std::int64_t dev = 0; dev < 4; ++dev) {
        const DeviceId id(2, dev);
        for (Phase ph :
             {Phase::Forward, Phase::Backward, Phase::Gradient}) {
            EXPECT_EQ(dsi.value(ph, dev, 0, 1), id.bit(0));
            EXPECT_EQ(dsi.value(ph, dev, 0, 2), id.bit(1));
            EXPECT_EQ(dsi.value(ph, dev, 0, 0), 0);
            EXPECT_EQ(dsi.value(ph, dev, 0, 3), 0);
        }
    }
}

/** Eq. 4-6 as written in the paper, for cross-checking. */
struct PaperDsi
{
    std::int64_t side, r, c, t;

    std::int64_t m(Phase ph) const
    {
        switch (ph) {
          case Phase::Forward:
          case Phase::Backward:
            return ((r % side) + side) % side;
          case Phase::Gradient:
            return (((r + t) % side) + side) % side;
        }
        return 0;
    }
    std::int64_t n(Phase ph) const
    {
        const std::int64_t delta = t == side - 1 ? 1 : 0;
        switch (ph) {
          case Phase::Forward:
            return (((r + c + t) % side) + side) % side;
          case Phase::Backward:
            return (((r + c - 1) % side) + side) % side;
          case Phase::Gradient:
            return (((r + c - 1 + delta) % side) + side) % side;
        }
        return 0;
    }
    std::int64_t k(Phase ph) const
    {
        const std::int64_t delta = t == side - 1 ? 1 : 0;
        switch (ph) {
          case Phase::Forward:
            return ((c % side) + side) % side;
          case Phase::Backward:
            return (((c + t) % side) + side) % side;
          case Phase::Gradient:
            return (((c - 1 + delta) % side) + side) % side;
        }
        return 0;
    }
};

class DsiPSquareTest : public ::testing::TestWithParam<int>
{};

TEST_P(DsiPSquareTest, MatchesPaperEquations)
{
    const int k = GetParam();
    const std::int64_t side = 1 << k;
    const OpSpec op = makeLinearOp("fc", 4, 64, 64, 64);
    PartitionSeq seq({PartitionStep::pSquare(k)});
    DsiTable dsi(op, seq, 2 * k);
    EXPECT_EQ(dsi.steps(), side);

    for (std::int64_t r = 0; r < side; ++r) {
        for (std::int64_t c = 0; c < side; ++c) {
            const std::int64_t dev = deviceFromRC(k, r, c);
            for (int t = 0; t < side; ++t) {
                const PaperDsi paper{side, r, c, t};
                for (Phase ph : {Phase::Forward, Phase::Backward,
                                 Phase::Gradient}) {
                    EXPECT_EQ(dsi.value(ph, dev, t, 1), paper.m(ph))
                        << "M k=" << k << " r=" << r << " c=" << c
                        << " t=" << t;
                    EXPECT_EQ(dsi.value(ph, dev, t, 2), paper.n(ph))
                        << "N";
                    EXPECT_EQ(dsi.value(ph, dev, t, 3), paper.k(ph))
                        << "K";
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllK, DsiPSquareTest, ::testing::Values(1, 2, 3));

class PSquareFeatureTest : public ::testing::TestWithParam<int>
{};

TEST_P(PSquareFeatureTest, SatisfiesAllThreePaperFeatures)
{
    const int k = GetParam();
    const OpSpec op = makeLinearOp("fc", 4, 64, 64, 64);
    PartitionSeq seq({PartitionStep::pSquare(k)});
    DsiTable dsi(op, seq, 2 * k);

    const auto coverage = verifyContractionCoverage(op, dsi);
    EXPECT_TRUE(coverage.ok) << coverage.message;
    const auto feature1 = verifyCollectiveFree(op, seq, dsi);
    EXPECT_TRUE(feature1.ok) << feature1.message;
    const auto feature2 = verifyNoReplication(op, dsi);
    EXPECT_TRUE(feature2.ok) << feature2.message;
    const auto feature3 = verifyPhaseAlignment(op, dsi);
    EXPECT_TRUE(feature3.ok) << feature3.message;
}

INSTANTIATE_TEST_SUITE_P(AllK, PSquareFeatureTest,
                         ::testing::Values(1, 2, 3));

TEST(Features, RowPartitionNeedsAllReduceAndReplicates)
{
    // Megatron row parallelism: partition N. Forward all-reduces O,
    // and O/dO are replicated — the motivating inefficiency (Sec. 2.2).
    const OpSpec op = smallLinear();
    PartitionSeq seq({PartitionStep::byDim(2)});
    DsiTable dsi(op, seq, 1);

    EXPECT_TRUE(verifyContractionCoverage(op, dsi).ok);
    EXPECT_FALSE(verifyCollectiveFree(op, seq, dsi).ok);
    EXPECT_FALSE(verifyNoReplication(op, dsi).ok);
    EXPECT_TRUE(verifyPhaseAlignment(op, dsi).ok);
}

TEST(Features, DataParallelAllReducesOnlyGradient)
{
    const OpSpec op = smallLinear();
    PartitionSeq seq({PartitionStep::byDim(0)}); // batch
    DsiTable dsi(op, seq, 1);

    const auto fwd = derivePassComm(op, seq, dsi, 0);
    const auto bwd = derivePassComm(op, seq, dsi, 1);
    const auto grad = derivePassComm(op, seq, dsi, 2);
    EXPECT_FALSE(fwd.allReduce.has_value());
    EXPECT_FALSE(bwd.allReduce.has_value());
    ASSERT_TRUE(grad.allReduce.has_value());
    EXPECT_EQ(grad.allReduce->indicator, (GroupIndicator{0}));
    // dW all-reduce across the two data-parallel devices.
    ASSERT_EQ(grad.allReduce->groups.size(), 1u);
    EXPECT_EQ(grad.allReduce->groups[0], (DeviceGroup{0, 1}));
}

TEST(Features, MixedDataParallelPlusPSquare)
{
    // B,P2x2 over 8 devices: temporal primitive handles N/K/M
    // contractions; only the batch bit induces a gradient all-reduce.
    const OpSpec op = makeLinearOp("fc", 8, 32, 32, 32);
    PartitionSeq seq({PartitionStep::byDim(0), PartitionStep::pSquare(1)});
    DsiTable dsi(op, seq, 3);

    EXPECT_TRUE(verifyContractionCoverage(op, dsi).ok);
    EXPECT_FALSE(derivePassComm(op, seq, dsi, 0).allReduce.has_value());
    EXPECT_FALSE(derivePassComm(op, seq, dsi, 1).allReduce.has_value());
    const auto grad = derivePassComm(op, seq, dsi, 2);
    ASSERT_TRUE(grad.allReduce.has_value());
    EXPECT_EQ(grad.allReduce->indicator, (GroupIndicator{0}));
}

TEST(Space, ConventionalCountForLinear)
{
    const OpSpec op = makeLinearOp("fc", 64, 64, 64, 64);
    SpaceOptions opts;
    opts.allowPSquare = false;
    // 4 partitionable dims, 3 bits: 4^3 orderings.
    EXPECT_EQ(enumerateSequences(op, 3, opts).size(), 64u);
}

TEST(Space, PSquareExtendsSpace)
{
    const OpSpec op = makeLinearOp("fc", 64, 64, 64, 64);
    SpaceOptions with;
    SpaceOptions without;
    without.allowPSquare = false;
    // n = 2: 16 ByDim orderings + P2x2.
    EXPECT_EQ(enumerateSequences(op, 2, without).size(), 16u);
    EXPECT_EQ(enumerateSequences(op, 2, with).size(), 17u);
    // n = 4: 256 + P2x2 at 3 slots x 16 orderings + P4x4.
    EXPECT_EQ(enumerateSequences(op, 4, with).size(), 256u + 48u + 1u);
}

TEST(Space, RespectsDivisibility)
{
    // Batch of 2 cannot be split 4 ways.
    const OpSpec op = makeLinearOp("fc", 2, 64, 64, 64);
    SpaceOptions opts;
    opts.allowPSquare = false;
    for (const auto &seq : enumerateSequences(op, 3, opts)) {
        const auto slices = seq.sliceCounts(op);
        EXPECT_LE(slices[0], 2);
    }
}

TEST(Space, ExcludedDims)
{
    const OpSpec op = makeLinearOp("fc", 64, 64, 64, 64);
    SpaceOptions opts;
    opts.allowPSquare = false;
    opts.excludedDims = {0}; // no batch partitioning (3D parallel mode)
    for (const auto &seq : enumerateSequences(op, 3, opts)) {
        for (const auto &s : seq.steps())
            EXPECT_NE(s.dim, 0);
    }
    EXPECT_EQ(enumerateSequences(op, 3, opts).size(), 27u); // 3^3
}

TEST(Space, MaxTemporalStepsBound)
{
    const OpSpec op = makeLinearOp("fc", 64, 64, 64, 64);
    SpaceOptions opts;
    opts.maxTemporalSteps = 2; // only P2x2 allowed
    for (const auto &seq : enumerateSequences(op, 4, opts))
        EXPECT_LE(seq.temporalSteps(), 2);
}

/** Property sweep: every sequence in the space of a linear operator is
 *  semantically valid (coverage) and phase-aligned. */
class SpacePropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(SpacePropertyTest, AllSequencesCoverAndAlign)
{
    const int num_bits = GetParam();
    const OpSpec op = makeLinearOp("fc", 8, 16, 16, 16);
    const auto space = enumerateSequences(op, num_bits);
    ASSERT_FALSE(space.empty());
    for (const auto &seq : space) {
        DsiTable dsi(op, seq, num_bits);
        const auto coverage = verifyContractionCoverage(op, dsi);
        ASSERT_TRUE(coverage.ok)
            << seq.toString(op) << ": " << coverage.message;
        const auto alignment = verifyPhaseAlignment(op, dsi);
        ASSERT_TRUE(alignment.ok)
            << seq.toString(op) << ": " << alignment.message;
    }
}

INSTANTIATE_TEST_SUITE_P(Bits, SpacePropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(Space, PSquareSequencesAvoidAllReduceUnlessSpatialContraction)
{
    // For every sequence with a PSquare and no ByDim on a contracted
    // dim of a pass, that pass must be collective-free.
    const OpSpec op = makeLinearOp("fc", 8, 16, 16, 16);
    for (const auto &seq : enumerateSequences(op, 3)) {
        if (!seq.hasPSquare())
            continue;
        DsiTable dsi(op, seq, 3);
        for (std::size_t p = 0; p < op.passes.size(); ++p) {
            bool spatial_contraction = false;
            for (const auto &step : seq.steps()) {
                if (step.kind != PartitionStep::Kind::ByDim)
                    continue;
                for (int d : op.passes[p].contracted)
                    if (step.dim == d)
                        spatial_contraction = true;
            }
            const auto comm =
                derivePassComm(op, seq, dsi, static_cast<int>(p));
            EXPECT_EQ(comm.allReduce.has_value(), spatial_contraction)
                << seq.toString(op) << " pass " << p;
        }
    }
}

} // namespace
} // namespace primepar
