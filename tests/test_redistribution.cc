/**
 * @file
 * Tests of inter-operator redistribution planning (Eqs. 8-9),
 * including a functional check that executing the plan's transfers
 * reconstructs every device's needed slice exactly.
 */

#include <gtest/gtest.h>

#include "comm/redistribution.hh"
#include "partition/space.hh"
#include "support/rng.hh"
#include "tensor/tensor.hh"

namespace primepar {
namespace {

/** Identity edge map for an op whose tensor dims mirror transfer dims. */
EdgeDimMap
identityMap(const OpSpec &op, int tensor)
{
    EdgeDimMap map;
    for (int d : op.tensors[tensor].dims)
        map.push_back(d);
    return map;
}

TEST(Redistribution, SameLayoutMovesNothing)
{
    const OpSpec op = makeLinearOp("fc", 4, 8, 8, 8);
    PartitionSeq seq({PartitionStep::byDim(1), PartitionStep::byDim(3)});
    DsiTable dsi(op, seq, 2);
    const auto layout =
        layoutOf(op, dsi, {op.outputTensor, false}, Phase::Forward, 0,
                 identityMap(op, op.outputTensor), {4, 8, 8});
    const auto plan = planRedistribution(layout, layout);
    EXPECT_TRUE(plan.transfers.empty());
    EXPECT_EQ(plan.totalElements, 0);
    // Everything needed is local.
    EXPECT_EQ(plan.localElements, 4 * (4 * 8 / 2 * 8 / 2));
}

TEST(Redistribution, DisjointRepartitionMovesEverythingMissing)
{
    // Producer splits M; consumer splits K: each device keeps exactly
    // the quadrant intersection and fetches the rest.
    const OpSpec op = makeLinearOp("fc", 4, 8, 8, 8);
    PartitionSeq prod({PartitionStep::byDim(1)});
    PartitionSeq cons({PartitionStep::byDim(3)});
    DsiTable pd(op, prod, 1), cd(op, cons, 1);
    const EdgeDimMap map = identityMap(op, op.outputTensor);
    const auto have = layoutOf(op, pd, {op.outputTensor, false},
                               Phase::Forward, 0, map, {4, 8, 8});
    const auto need = layoutOf(op, cd, {op.outputTensor, false},
                               Phase::Forward, 0, map, {4, 8, 8});
    const auto plan = planRedistribution(have, need);

    // Each device holds a half-row block (4*4*8 elems? producer splits
    // M: holds [4, 4, 8]); consumer needs [4, 8, 4]. Overlap: [4,4,4].
    const std::int64_t overlap = 4 * 4 * 4;
    EXPECT_EQ(plan.localElements, 2 * overlap);
    EXPECT_EQ(plan.totalElements, 2 * (4 * 8 * 4 - overlap));
}

TEST(Redistribution, ReplicatedProducerPrefersSameNode)
{
    // Producer replicates across the first bit (partition M only with
    // bit 2); build an 8-device case and check same-node sourcing.
    const OpSpec op = makeLinearOp("fc", 8, 8, 8, 8);
    PartitionSeq prod({PartitionStep::byDim(1), PartitionStep::byDim(1),
                       PartitionStep::byDim(1)});
    PartitionSeq cons({PartitionStep::byDim(3), PartitionStep::byDim(3),
                       PartitionStep::byDim(3)});
    DsiTable pd(op, prod, 3), cd(op, cons, 3);
    const EdgeDimMap map = identityMap(op, op.outputTensor);
    const auto have = layoutOf(op, pd, {op.outputTensor, false},
                               Phase::Forward, 0, map, {8, 8, 8});
    const auto need = layoutOf(op, cd, {op.outputTensor, false},
                               Phase::Forward, 0, map, {8, 8, 8});
    const ClusterTopology topo(2, 4);
    const auto plan = planRedistribution(have, need, &topo);
    for (const auto &tr : plan.transfers) {
        // Producer boxes are unreplicated here (M split 8 ways by 3
        // bits), so sourcing is fixed; just sanity-check legality.
        EXPECT_NE(tr.src, tr.dst);
        EXPECT_GT(tr.elements, 0);
    }
}

TEST(Redistribution, PlanReconstructsNeededSlices)
{
    // Functional check: move real data according to the plan and
    // verify every consumer holds exactly its needed slice.
    const OpSpec op = makeLinearOp("fc", 4, 8, 8, 8);
    Rng rng(3);
    const Tensor full = Tensor::random(Shape{4, 8, 8}, rng);
    const EdgeDimMap map = identityMap(op, op.outputTensor);

    const auto space = enumerateSequences(op, 2);
    for (const auto &prod : space) {
        DsiTable pd(op, prod, 2);
        const auto have = layoutOf(op, pd, {op.outputTensor, false},
                                   Phase::Forward, pd.steps() - 1, map,
                                   {4, 8, 8});
        for (const auto &cons : space) {
            DsiTable cd(op, cons, 2);
            const auto need =
                layoutOf(op, cd, {op.outputTensor, false},
                         Phase::Forward, 0, map, {4, 8, 8});
            const auto plan = planRedistribution(have, need);

            // Each device assembles its needed box from local overlap
            // plus received transfers; compare against ground truth.
            for (std::int64_t dev = 0; dev < 4; ++dev) {
                const auto &box = need.deviceBox[dev];
                std::vector<std::int64_t> starts, extents;
                for (const auto &r : box) {
                    starts.push_back(r.start);
                    extents.push_back(r.length());
                }
                Tensor assembled(Shape(extents.begin(), extents.end()));
                // Local part.
                {
                    const auto &hbox = have.deviceBox[dev];
                    std::vector<std::int64_t> s, e, off;
                    bool empty = false;
                    for (std::size_t d = 0; d < box.size(); ++d) {
                        const std::int64_t lo =
                            std::max(box[d].start, hbox[d].start);
                        const std::int64_t hi =
                            std::min(box[d].end, hbox[d].end);
                        if (hi <= lo) {
                            empty = true;
                            break;
                        }
                        s.push_back(lo);
                        e.push_back(hi - lo);
                        off.push_back(lo - box[d].start);
                    }
                    if (!empty)
                        assembled.assignSlice(off, full.slice(s, e));
                }
                // Received parts.
                for (const auto &tr : plan.transfers) {
                    if (tr.dst != dev)
                        continue;
                    std::vector<std::int64_t> s, e, off;
                    for (std::size_t d = 0; d < tr.region.size(); ++d) {
                        s.push_back(tr.region[d].start);
                        e.push_back(tr.region[d].length());
                        off.push_back(tr.region[d].start - box[d].start);
                    }
                    assembled.assignSlice(off, full.slice(s, e));
                }
                const Tensor expect = full.slice(starts, extents);
                ASSERT_EQ(assembled.maxAbsDiff(expect), 0.0f)
                    << prod.toString(op) << " -> " << cons.toString(op)
                    << " device " << dev;
            }
        }
    }
}

TEST(Redistribution, RescaledDimMapping)
{
    // Producer dim of size 16 mapped onto a transfer dim of size 4
    // (e.g. fused QKV -> heads): slice boundaries rescale exactly.
    const OpSpec op = makeLinearOp("fc", 4, 8, 8, 16);
    PartitionSeq seq({PartitionStep::byDim(3), PartitionStep::byDim(3)});
    DsiTable dsi(op, seq, 2);
    // Transfer tensor [B=4, M=8, Hd=4]: K (16) maps onto Hd (4).
    const EdgeDimMap map{0, 1, 3};
    const auto layout = layoutOf(op, dsi, {op.outputTensor, false},
                                 Phase::Forward, 0, map, {4, 8, 4});
    // Device 0 holds K slice 0 of 4 -> Hd range [0, 1).
    EXPECT_EQ(layout.deviceBox[0][2], (SliceRange{0, 1}));
    EXPECT_EQ(layout.deviceBox[3][2], (SliceRange{3, 4}));
}

TEST(Redistribution, TotalMatchesEq9)
{
    // Eq. 9: traffic = sum_D (V - prod_X |S1 ^ S2|).
    const OpSpec op = makeLinearOp("fc", 4, 8, 8, 8);
    PartitionSeq prod({PartitionStep::byDim(0), PartitionStep::byDim(1)});
    PartitionSeq cons({PartitionStep::byDim(1), PartitionStep::byDim(3)});
    DsiTable pd(op, prod, 2), cd(op, cons, 2);
    const EdgeDimMap map = identityMap(op, op.outputTensor);
    const auto have = layoutOf(op, pd, {op.outputTensor, false},
                               Phase::Forward, 0, map, {4, 8, 8});
    const auto need = layoutOf(op, cd, {op.outputTensor, false},
                               Phase::Forward, 0, map, {4, 8, 8});
    const auto plan = planRedistribution(have, need);

    std::int64_t expect = 0;
    for (std::int64_t dev = 0; dev < 4; ++dev) {
        std::int64_t v = need.boxVolume(dev);
        std::int64_t overlap = 1;
        for (std::size_t d = 0; d < 3; ++d) {
            overlap *= need.deviceBox[dev][d].intersect(
                have.deviceBox[dev][d]);
        }
        expect += v - overlap;
    }
    EXPECT_EQ(plan.totalElements, expect);
}

} // namespace
} // namespace primepar
