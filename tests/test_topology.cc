/**
 * @file
 * Unit tests for device ids, cluster topology and group patterns.
 */

#include <gtest/gtest.h>

#include "topology/cluster.hh"
#include "topology/device.hh"
#include "topology/groups.hh"

namespace primepar {
namespace {

TEST(DeviceId, BitOrderMsbFirst)
{
    // D = (d1, d2, d3) with d1 the most significant bit: device 5 =
    // 0b101 -> (1, 0, 1).
    DeviceId d(3, 5);
    EXPECT_EQ(d.bit(0), 1);
    EXPECT_EQ(d.bit(1), 0);
    EXPECT_EQ(d.bit(2), 1);
    EXPECT_EQ(d.toString(), "(1,0,1)");
}

TEST(DeviceId, AllDevices)
{
    const auto devs = allDevices(3);
    EXPECT_EQ(devs.size(), 8u);
    EXPECT_EQ(devs[7].linear(), 7);
    EXPECT_EQ(devs[0].numBits(), 3);
}

TEST(Cluster, PaperClusterShapes)
{
    // <= 4 devices: single node; beyond: 4 GPUs per node.
    const auto c4 = ClusterTopology::paperCluster(4);
    EXPECT_EQ(c4.numNodes(), 1);
    EXPECT_EQ(c4.gpusPerNode(), 4);
    const auto c32 = ClusterTopology::paperCluster(32);
    EXPECT_EQ(c32.numNodes(), 8);
    EXPECT_EQ(c32.gpusPerNode(), 4);
    EXPECT_EQ(c32.numBits(), 5);
}

TEST(Cluster, NodePlacementAndBandwidth)
{
    const auto c = ClusterTopology::paperCluster(8);
    EXPECT_EQ(c.nodeOf(0), 0);
    EXPECT_EQ(c.nodeOf(3), 0);
    EXPECT_EQ(c.nodeOf(4), 1);
    EXPECT_TRUE(c.sameNode(1, 2));
    EXPECT_FALSE(c.sameNode(3, 4));
    EXPECT_GT(c.linkBandwidth(0, 1), c.linkBandwidth(0, 4));
    EXPECT_LT(c.linkLatency(0, 1), c.linkLatency(0, 4));
}

TEST(Groups, EnumerateMatchesPaperFig9)
{
    // 8 GPUs, 2 nodes x 4: indicator (d2, d3) -> intra-node groups
    // {0,1,2,3} and {4,5,6,7} (paper Fig. 9 discussion).
    const auto groups = enumerateGroups(3, {1, 2});
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0], (DeviceGroup{0, 1, 2, 3}));
    EXPECT_EQ(groups[1], (DeviceGroup{4, 5, 6, 7}));
}

TEST(Groups, IndicatorD1GivesCrossNodePairs)
{
    // Indicator (d1) -> groups (0,4), (1,5), (2,6), (3,7).
    const auto groups = enumerateGroups(3, {0});
    ASSERT_EQ(groups.size(), 4u);
    EXPECT_EQ(groups[0], (DeviceGroup{0, 4}));
    EXPECT_EQ(groups[1], (DeviceGroup{1, 5}));
    EXPECT_EQ(groups[2], (DeviceGroup{2, 6}));
    EXPECT_EQ(groups[3], (DeviceGroup{3, 7}));
}

TEST(Groups, EmptyIndicatorGivesSingletons)
{
    const auto groups = enumerateGroups(2, {});
    EXPECT_EQ(groups.size(), 4u);
    for (const auto &g : groups)
        EXPECT_EQ(g.size(), 1u);
}

TEST(Groups, FullIndicatorGivesOneGroup)
{
    const auto groups = enumerateGroups(2, {0, 1});
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), 4u);
}

TEST(Groups, GroupsPartitionDeviceSet)
{
    const auto groups = enumerateGroups(4, {0, 2});
    std::vector<bool> seen(16, false);
    for (const auto &g : groups) {
        for (std::int64_t d : g) {
            EXPECT_FALSE(seen[d]);
            seen[d] = true;
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Groups, RingBottleneckDependsOnSpan)
{
    const auto c = ClusterTopology::paperCluster(8);
    // Intra-node group: fast; cross-node group: bottlenecked.
    const DeviceGroup intra{0, 1, 2, 3};
    const DeviceGroup cross{0, 4};
    EXPECT_EQ(ringBottleneckBandwidth(c, intra), c.intraBandwidth());
    EXPECT_EQ(ringBottleneckBandwidth(c, cross), c.interBandwidth());
    EXPECT_FALSE(groupSpansNodes(c, intra));
    EXPECT_TRUE(groupSpansNodes(c, cross));
}

TEST(Groups, PatternKeyClassifiesBits)
{
    const auto c = ClusterTopology::paperCluster(8); // 2 nodes: 1 node bit
    const auto key_intra = groupPatternKey(c, {1, 2});
    EXPECT_EQ(key_intra.interNodeBits, 0);
    EXPECT_EQ(key_intra.intraNodeBits, 2);
    const auto key_mixed = groupPatternKey(c, {0, 2});
    EXPECT_EQ(key_mixed.interNodeBits, 1);
    EXPECT_EQ(key_mixed.intraNodeBits, 1);
}

TEST(Groups, IndicatorToString)
{
    EXPECT_EQ(indicatorToString({0, 2}), "(d1,d3)");
    EXPECT_EQ(indicatorToString({}), "()");
}

} // namespace
} // namespace primepar
