/**
 * @file
 * Wire-codec tests: the lossless Pack codec must round-trip every
 * bit pattern exactly (including NaN/Inf/-0) at any length, compress
 * bf16-rounded gradients below the bench budget, and stay near-free
 * on incompressible data; the lossy bf16/int8 codecs must respect
 * their stated tolerances; and a transport routed through a codec
 * must keep the full checksummed-delivery contract — corrupted
 * encoded streams are detected and retried, graph execution stays
 * bit-identical, and bytes-on-wire shrink.
 */

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

#include "runtime/codec.hh"
#include "runtime/errors.hh"
#include "runtime/graph_executor.hh"
#include "runtime/trainer.hh"
#include "runtime/transformer_runtime.hh"
#include "runtime/transport.hh"
#include "support/rng.hh"

namespace primepar {
namespace {

/** Truncate @p t to bf16 precision in place (low 16 bits cleared) —
 *  the canonical "compressible gradient" payload. */
void
roundToBf16(Tensor &t)
{
    float *p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        std::uint32_t u;
        std::memcpy(&u, &p[i], 4);
        u &= 0xffff0000u;
        std::memcpy(&p[i], &u, 4);
    }
}

/** Encode + decode through @p kind; dst starts sentinel-filled, so a
 *  skipped element would survive as the sentinel. */
Tensor
roundTrip(CodecKind kind, const Tensor &src, std::size_t *bytes_out)
{
    const std::int64_t n = src.numel();
    std::vector<std::uint8_t> wire(codecBound(kind, n) + 1, 0xee);
    const std::size_t bytes = codecEncode(kind, src.data(), n,
                                          wire.data());
    EXPECT_LE(bytes, codecBound(kind, n));
    Tensor dst(src.shape());
    for (std::int64_t i = 0; i < n; ++i)
        dst.data()[i] = -777.0f; // sentinel: decode must overwrite
    codecDecode(kind, wire.data(), bytes, dst.data(), n);
    if (bytes_out)
        *bytes_out = bytes;
    return dst;
}

TEST(Codec, NamesRoundTripAndRejectUnknown)
{
    for (CodecKind k : {CodecKind::None, CodecKind::Pack,
                        CodecKind::Bf16, CodecKind::Int8})
        EXPECT_EQ(parseCodecKind(codecKindName(k)), k);
    EXPECT_THROW(parseCodecKind("gzip"), RuntimeError);
    EXPECT_THROW(parseCodecKind(""), RuntimeError);
    EXPECT_TRUE(codecLossless(CodecKind::None));
    EXPECT_TRUE(codecLossless(CodecKind::Pack));
    EXPECT_FALSE(codecLossless(CodecKind::Bf16));
    EXPECT_FALSE(codecLossless(CodecKind::Int8));
}

TEST(Codec, PackRoundTripsExactlyAtEverySize)
{
    Rng rng(101);
    // Straddles block boundaries (128 words) and the byte-aligned
    // fast-path widths.
    for (std::int64_t n : {1, 2, 31, 127, 128, 129, 255, 1000, 4096}) {
        const Tensor src = Tensor::random(Shape{n}, rng);
        std::size_t bytes = 0;
        const Tensor got = roundTrip(CodecKind::Pack, src, &bytes);
        EXPECT_EQ(std::memcmp(got.data(), src.data(),
                              static_cast<std::size_t>(n) * 4),
                  0)
            << "n=" << n;
    }
}

TEST(Codec, PackPreservesSpecialValuesBitForBit)
{
    Tensor src(Shape{130});
    float *p = src.data();
    p[0] = std::nanf("");
    p[1] = HUGE_VALF;  // +inf
    p[2] = -HUGE_VALF; // -inf
    p[3] = -0.0f;
    p[4] = 1e-44f; // subnormal
    p[129] = -1.5f;
    const Tensor got = roundTrip(CodecKind::Pack, src, nullptr);
    EXPECT_EQ(std::memcmp(got.data(), src.data(), 130 * 4), 0);
}

TEST(Codec, PackCompressionRatios)
{
    Rng rng(202);
    const std::int64_t n = 8192;

    // bf16-rounded gradients: low 16 bits are zero, so each block
    // packs to ~16-bit width. This is the bench_check budget.
    Tensor grads = Tensor::random(Shape{n}, rng);
    roundToBf16(grads);
    std::size_t bytes = 0;
    const Tensor got = roundTrip(CodecKind::Pack, grads, &bytes);
    EXPECT_EQ(std::memcmp(got.data(), grads.data(), n * 4), 0);
    const double ratio =
        static_cast<double>(bytes) / static_cast<double>(4 * n);
    EXPECT_LE(ratio, 0.7) << "bf16-rounded pack ratio " << ratio;

    // All zeros: 2 header bytes per 128-word block.
    const Tensor zeros(Shape{n});
    roundTrip(CodecKind::Pack, zeros, &bytes);
    EXPECT_EQ(bytes, static_cast<std::size_t>(2 * (n / 128)));

    // Incompressible random fp32: < 2% overhead.
    const Tensor noise = Tensor::random(Shape{n}, rng);
    roundTrip(CodecKind::Pack, noise, &bytes);
    EXPECT_LE(static_cast<double>(bytes),
              1.02 * static_cast<double>(4 * n));
}

TEST(Codec, Bf16HalvesBytesWithinTolerance)
{
    Rng rng(303);
    const std::int64_t n = 1000;
    const Tensor src = Tensor::random(Shape{n}, rng);
    std::size_t bytes = 0;
    const Tensor got = roundTrip(CodecKind::Bf16, src, &bytes);
    EXPECT_EQ(bytes, static_cast<std::size_t>(2 * n));
    for (std::int64_t i = 0; i < n; ++i) {
        // bf16 keeps 8 mantissa bits: relative error <= 2^-8.
        EXPECT_NEAR(got.data()[i], src.data()[i],
                    std::fabs(src.data()[i]) / 256.0f + 1e-30f)
            << "i=" << i;
    }
    // Already-bf16 data survives exactly (round-to-nearest-even of a
    // representable value is the identity).
    Tensor exact = Tensor::random(Shape{n}, rng);
    roundToBf16(exact);
    const Tensor again = roundTrip(CodecKind::Bf16, exact, &bytes);
    EXPECT_EQ(std::memcmp(again.data(), exact.data(), n * 4), 0);
}

TEST(Codec, Int8QuantizesPerBlockWithinScaleTolerance)
{
    Rng rng(404);
    const std::int64_t n = 640; // 5 blocks
    const Tensor src = Tensor::random(Shape{n}, rng);
    std::size_t bytes = 0;
    const Tensor got = roundTrip(CodecKind::Int8, src, &bytes);
    EXPECT_EQ(bytes, static_cast<std::size_t>(4 * (n / 128) + n));
    for (std::int64_t b = 0; b < n / 128; ++b) {
        float max_abs = 0.0f;
        for (std::int64_t i = b * 128; i < (b + 1) * 128; ++i)
            max_abs = std::max(max_abs, std::fabs(src.data()[i]));
        const float step = max_abs / 127.0f;
        for (std::int64_t i = b * 128; i < (b + 1) * 128; ++i) {
            EXPECT_NEAR(got.data()[i], src.data()[i],
                        0.5f * step + 1e-30f)
                << "i=" << i;
        }
    }
}

TEST(Codec, ConfigParsesWholeAndPerChannel)
{
    const CodecConfig all = CodecConfig::parse("pack");
    EXPECT_EQ(all.ring, CodecKind::Pack);
    EXPECT_EQ(all.acc, CodecKind::Pack);
    EXPECT_EQ(all.allreduce, CodecKind::Pack);
    EXPECT_TRUE(all.any());

    const CodecConfig mixed =
        CodecConfig::parse("ring=pack,allreduce=bf16");
    EXPECT_EQ(mixed.ring, CodecKind::Pack);
    EXPECT_EQ(mixed.acc, CodecKind::None);
    EXPECT_EQ(mixed.allreduce, CodecKind::Bf16);
    EXPECT_EQ(mixed.forChannel("ring"), CodecKind::Pack);
    EXPECT_EQ(mixed.forChannel("acc"), CodecKind::None);
    EXPECT_EQ(mixed.forChannel("allreduce"), CodecKind::Bf16);
    EXPECT_EQ(mixed.forChannel("unknown"), CodecKind::None);

    // toString() re-parses to the same selection.
    const CodecConfig reparsed = CodecConfig::parse(mixed.toString());
    EXPECT_EQ(reparsed.ring, mixed.ring);
    EXPECT_EQ(reparsed.acc, mixed.acc);
    EXPECT_EQ(reparsed.allreduce, mixed.allreduce);

    EXPECT_FALSE(CodecConfig{}.any());
    EXPECT_FALSE(CodecConfig::parse("none").any());
    EXPECT_THROW(CodecConfig::parse("gzip"), RuntimeError);
    EXPECT_THROW(CodecConfig::parse("ring="), RuntimeError);
    EXPECT_THROW(CodecConfig::parse("tube=pack"), RuntimeError);
}

TransferTag
ringTag()
{
    TransferTag tag;
    tag.tensor = "X";
    tag.channel = "ring";
    tag.sender = 0;
    tag.receiver = 1;
    return tag;
}

TEST(CodecTransport, PackedTransferIsBitIdenticalAndSmaller)
{
    TransportOptions topts;
    topts.codec = CodecConfig::parse("pack");
    RuntimeHealth health;
    InProcessTransport transport(topts, nullptr, &health);

    Rng rng(505);
    Tensor payload = Tensor::random(Shape{64, 64}, rng);
    roundToBf16(payload);
    Tensor dst;
    const TransferReceipt r =
        transport.transferInto(ringTag(), payload, dst);
    EXPECT_EQ(r.rawBytes, payload.numel() * 4);
    EXPECT_LT(r.wireBytes, r.rawBytes);
    EXPECT_EQ(std::memcmp(dst.data(), payload.data(),
                          static_cast<std::size_t>(r.rawBytes)),
              0);
    EXPECT_EQ(health.bytesMoved, r.rawBytes);
    EXPECT_EQ(health.bytesOnWire, r.wireBytes);
}

TEST(CodecTransport, DecodeFullyOverwritesRecycledDestination)
{
    TransportOptions topts;
    topts.codec = CodecConfig::parse("pack");
    InProcessTransport transport(topts, nullptr, nullptr);

    Rng rng(506);
    const Tensor payload = Tensor::random(Shape{256}, rng);
    // A reused destination arrives with stale contents; every element
    // must be overwritten by the decode.
    Tensor dst(Shape{256});
    for (std::int64_t i = 0; i < dst.numel(); ++i)
        dst.data()[i] = -31337.0f;
    transport.transferInto(ringTag(), payload, dst);
    EXPECT_EQ(dst.maxAbsDiff(payload), 0.0f);
}

TEST(CodecTransport, CorruptionOfEncodedStreamIsDetected)
{
    for (const char *codec : {"pack", "bf16", "int8"}) {
        TransportOptions topts;
        topts.codec = CodecConfig::parse(codec);
        FaultSpec spec;
        spec.corruptProb = 1.0;
        RuntimeHealth health;
        InProcessTransport transport(
            topts, std::make_shared<FaultInjector>(spec), &health);
        Rng rng(607);
        const Tensor payload = Tensor::random(Shape{100}, rng);
        EXPECT_THROW(transport.transfer(ringTag(), payload),
                     TransientFaultError)
            << codec;
        EXPECT_GT(health.corruptionsDetected + health.headerMismatches,
                  0)
            << codec;
    }
}

TEST(CodecTransport, TransientCorruptionRecoversExactPayload)
{
    TransportOptions topts;
    topts.codec = CodecConfig::parse("pack");
    FaultSpec spec;
    ScheduledFault fault;
    fault.kind = FaultKind::Corrupt;
    fault.fires = 1; // absorbed by one in-transport retry
    spec.schedule.push_back(fault);
    RuntimeHealth health;
    InProcessTransport transport(
        topts, std::make_shared<FaultInjector>(spec), &health);

    Rng rng(708);
    const Tensor payload = Tensor::random(Shape{300}, rng);
    const Tensor got = transport.transfer(ringTag(), payload);
    EXPECT_EQ(got.maxAbsDiff(payload), 0.0f);
    EXPECT_GT(health.corruptionsDetected + health.headerMismatches, 0);
    EXPECT_GT(health.retries, 0);
}

TEST(CodecTransport, GraphRunWithPackedChannelsIsBitIdentical)
{
    ModelConfig cfg;
    cfg.name = "tiny";
    cfg.hiddenSize = 8;
    cfg.numHeads = 2;
    cfg.ffnSize = 16;
    cfg.seqLength = 4;
    cfg.numLayers = 1;
    const CompGraph graph = buildTransformerBlock(cfg, 2);

    Rng rng(809);
    GraphIO io;
    io.input =
        Tensor::random(Shape{2, cfg.seqLength, cfg.hiddenSize}, rng);
    io.params = randomBlockParams(graph, rng);
    io.d_output =
        Tensor::random(Shape{2, cfg.seqLength, cfg.hiddenSize}, rng);

    const auto plan = defaultBlockPlan(graph, 2);
    auto runWith = [&](Transport *t) {
        SpmdGraphExecutor exec(graph, plan, 2, 1);
        installTransformerBlockTransforms(exec, cfg, 2);
        if (t)
            exec.setTransport(t);
        exec.beginStep(0);
        GraphResult res = exec.run(io);
        return std::make_pair(std::move(res), exec.stats());
    };

    const auto [ref, ref_stats] = runWith(nullptr);

    TransportOptions topts;
    topts.codec = CodecConfig::parse("pack"); // lossless everywhere
    RuntimeHealth health;
    InProcessTransport transport(topts, nullptr, &health);
    const auto [got, stats] = runWith(&transport);

    EXPECT_EQ(got.output.maxAbsDiff(ref.output), 0.0f);
    EXPECT_EQ(got.d_input.maxAbsDiff(ref.d_input), 0.0f);
    for (const auto &[name, grad] : ref.d_params)
        EXPECT_EQ(got.d_params.at(name).maxAbsDiff(grad), 0.0f)
            << name;

    EXPECT_GT(stats.wireBytes, 0);
    EXPECT_EQ(health.bytesOnWire, stats.wireBytes);
    // Random fp32 barely packs, but the codec may never *grow* the
    // traffic beyond its documented < 2% framing overhead
    // (health.bytesMoved is the pre-codec byte total).
    EXPECT_LE(static_cast<double>(stats.wireBytes),
              1.02 * static_cast<double>(health.bytesMoved));
}

} // namespace
} // namespace primepar
