/**
 * @file
 * Randomized property tests: arbitrary contraction operators (random
 * dimension counts, sizes and tensor shapes) must satisfy the same
 * invariants as the hand-written transformer operators — contraction
 * coverage, phase alignment, ring-bijection of derived shifts, and
 * functional equivalence under SPMD execution.
 */

#include <gtest/gtest.h>

#include "partition/alignment.hh"
#include "partition/space.hh"
#include "runtime/spmd_executor.hh"
#include "support/rng.hh"

namespace primepar {
namespace {

/** Build a random batched matmul A[batch.., m, c] x B[batch.., c, k]. */
OpSpec
randomMatmulOp(Rng &rng, int max_batch_dims = 2)
{
    const int batch_dims = 1 + static_cast<int>(rng.below(max_batch_dims));
    std::vector<std::string> names;
    std::vector<std::int64_t> sizes;
    std::vector<int> a_dims, b_dims, out_dims;
    for (int d = 0; d < batch_dims; ++d) {
        names.push_back("B" + std::to_string(d));
        sizes.push_back(2 << rng.below(2)); // 2 or 4
        a_dims.push_back(d);
        b_dims.push_back(d);
        out_dims.push_back(d);
    }
    const int m = batch_dims, c = batch_dims + 1, k = batch_dims + 2;
    names.push_back("M");
    names.push_back("C");
    names.push_back("K");
    for (int i = 0; i < 3; ++i)
        sizes.push_back(4 << rng.below(2)); // 4 or 8
    a_dims.push_back(m);
    a_dims.push_back(c);
    b_dims.push_back(c);
    b_dims.push_back(k);
    out_dims.push_back(m);
    out_dims.push_back(k);
    return makeBatchedMatmulOp("rand", names, sizes, a_dims, b_dims,
                               out_dims);
}

Shape
shapeOf(const OpSpec &op, int tensor)
{
    Shape s;
    for (int d : op.tensors[tensor].dims)
        s.push_back(op.dims[d].size);
    return s;
}

class RandomOpProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RandomOpProperty, InvariantsAndEquivalence)
{
    Rng rng(1000 + GetParam());
    const OpSpec op = randomMatmulOp(rng);
    const int num_bits = 2;

    std::map<std::string, Tensor> inputs;
    inputs["A"] = Tensor::random(shapeOf(op, 0), rng);
    inputs["Bm"] = Tensor::random(shapeOf(op, 1), rng);
    inputs["dO"] = Tensor::random(shapeOf(op, 2), rng);
    const auto ref = referenceTrainStep(op, inputs);

    int checked = 0;
    for (const auto &seq : enumerateSequences(op, num_bits)) {
        DsiTable dsi(op, seq, num_bits);
        const auto coverage = verifyContractionCoverage(op, dsi);
        ASSERT_TRUE(coverage.ok)
            << seq.toString(op) << ": " << coverage.message;
        const auto alignment = verifyPhaseAlignment(op, dsi);
        ASSERT_TRUE(alignment.ok)
            << seq.toString(op) << ": " << alignment.message;

        SpmdOpExecutor exec(op, seq, num_bits);
        const auto got = exec.run(inputs);
        ASSERT_TRUE(got.output.allClose(ref.output, 1e-3f, 1e-4f))
            << seq.toString(op);
        ASSERT_TRUE(got.d_input.allClose(ref.d_input, 1e-3f, 1e-4f))
            << seq.toString(op);
        ++checked;
    }
    EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpProperty,
                         ::testing::Range(0, 12));

class RandomLinearShapes : public ::testing::TestWithParam<int>
{};

TEST_P(RandomLinearShapes, PSquareExactForUnevenShapes)
{
    // PSquare with non-square, non-power-of-two-ratio shapes.
    Rng rng(5000 + GetParam());
    const std::int64_t b = 1 + rng.below(3);
    const std::int64_t m = 4 * (1 + rng.below(3));
    const std::int64_t n = 4 * (1 + rng.below(3));
    const std::int64_t k = 4 * (1 + rng.below(3));
    const OpSpec op = makeLinearOp("fc", b, m, n, k);

    std::map<std::string, Tensor> inputs;
    inputs["I"] = Tensor::random(Shape{b, m, n}, rng);
    inputs["W"] = Tensor::random(Shape{n, k}, rng);
    inputs["dO"] = Tensor::random(Shape{b, m, k}, rng);
    const auto ref = referenceTrainStep(op, inputs);

    SpmdOpExecutor exec(op, PartitionSeq({PartitionStep::pSquare(1)}),
                        2);
    const auto got = exec.run(inputs);
    EXPECT_TRUE(got.output.allClose(ref.output, 1e-3f, 1e-4f))
        << b << "x" << m << "x" << n << "x" << k;
    EXPECT_TRUE(got.d_weight.allClose(ref.d_weight, 1e-3f, 1e-4f));
    EXPECT_TRUE(got.d_input.allClose(ref.d_input, 1e-3f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLinearShapes,
                         ::testing::Range(0, 10));

} // namespace
} // namespace primepar
