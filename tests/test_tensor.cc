/**
 * @file
 * Unit tests for the dense tensor library and reference kernels.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace primepar {
namespace {

TEST(Tensor, ConstructionAndShape)
{
    Tensor t(Shape{2, 3, 4});
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.numel(), 24);
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(2), 4);
    EXPECT_EQ(t.shapeString(), "[2, 3, 4]");
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(Tensor, AtRoundTrips)
{
    Tensor t(Shape{2, 3});
    t.at({1, 2}) = 7.0f;
    t.at({0, 1}) = -3.0f;
    EXPECT_EQ(t.at({1, 2}), 7.0f);
    EXPECT_EQ(t.at({0, 1}), -3.0f);
    EXPECT_EQ(t.data()[1 * 3 + 2], 7.0f);
}

TEST(Tensor, SliceAndAssignRoundTrip)
{
    Rng rng(1);
    Tensor t = Tensor::random(Shape{4, 6}, rng);
    Tensor s = t.slice({1, 2}, {2, 3});
    EXPECT_EQ(s.shape(), (Shape{2, 3}));
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t j = 0; j < 3; ++j)
            EXPECT_EQ(s.at({i, j}), t.at({i + 1, j + 2}));

    Tensor u(Shape{4, 6});
    u.assignSlice({1, 2}, s);
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t j = 0; j < 3; ++j)
            EXPECT_EQ(u.at({i + 1, j + 2}), s.at({i, j}));
}

TEST(Tensor, NarrowMatchesSlice)
{
    Rng rng(2);
    Tensor t = Tensor::random(Shape{4, 8}, rng);
    Tensor a = t.narrow(1, 2, 4);
    Tensor b = t.slice({0, 2}, {4, 4});
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f);
}

TEST(Tensor, AccumulateSlice)
{
    Tensor t = Tensor::full(Shape{2, 2}, 1.0f);
    Tensor s = Tensor::full(Shape{1, 2}, 2.0f);
    t.accumulateSlice({1, 0}, s);
    EXPECT_EQ(t.at({0, 0}), 1.0f);
    EXPECT_EQ(t.at({1, 0}), 3.0f);
    EXPECT_EQ(t.at({1, 1}), 3.0f);
}

TEST(Tensor, AddScaleZero)
{
    Tensor a = Tensor::full(Shape{3}, 2.0f);
    Tensor b = Tensor::full(Shape{3}, 0.5f);
    a.add(b);
    EXPECT_EQ(a.at({0}), 2.5f);
    a.scale(2.0f);
    EXPECT_EQ(a.at({2}), 5.0f);
    a.zero();
    EXPECT_EQ(a.at({1}), 0.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Rng rng(3);
    Tensor t = Tensor::random(Shape{2, 6}, rng);
    Tensor r = t.reshape(Shape{3, 4});
    EXPECT_EQ(r.numel(), t.numel());
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(r.data()[i], t.data()[i]);
}

TEST(Tensor, AllClose)
{
    Tensor a = Tensor::full(Shape{4}, 1.0f);
    Tensor b = Tensor::full(Shape{4}, 1.0f + 1e-6f);
    EXPECT_TRUE(a.allClose(b));
    Tensor c = Tensor::full(Shape{4}, 1.1f);
    EXPECT_FALSE(a.allClose(c));
    Tensor d = Tensor::full(Shape{2, 2}, 1.0f);
    EXPECT_FALSE(a.allClose(d)); // shape mismatch
}

TEST(Ops, LinearForwardSmall)
{
    // I = [[1, 2]], W = [[1, 0], [0, 1]] -> O = [[1, 2]].
    Tensor i(Shape{1, 1, 2});
    i.at({0, 0, 0}) = 1.0f;
    i.at({0, 0, 1}) = 2.0f;
    Tensor w(Shape{2, 2});
    w.at({0, 0}) = 1.0f;
    w.at({1, 1}) = 1.0f;
    Tensor o = linearForward(i, w);
    EXPECT_EQ(o.shape(), (Shape{1, 1, 2}));
    EXPECT_EQ(o.at({0, 0, 0}), 1.0f);
    EXPECT_EQ(o.at({0, 0, 1}), 2.0f);
}

TEST(Ops, LinearBackwardIsTransposedForward)
{
    Rng rng(4);
    Tensor go = Tensor::random(Shape{2, 3, 4}, rng);
    Tensor w = Tensor::random(Shape{5, 4}, rng);
    Tensor gi = linearBackward(go, w);
    EXPECT_EQ(gi.shape(), (Shape{2, 3, 5}));
    // gi[b,m,n] = sum_k go[b,m,k] * w[n,k]
    float expect = 0.0f;
    for (int k = 0; k < 4; ++k)
        expect += go.at({1, 2, k}) * w.at({3, k});
    EXPECT_NEAR(gi.at({1, 2, 3}), expect, 1e-5f);
}

TEST(Ops, LinearGradientSumsBatchAndRows)
{
    Rng rng(5);
    Tensor in = Tensor::random(Shape{2, 3, 4}, rng);
    Tensor go = Tensor::random(Shape{2, 3, 5}, rng);
    Tensor dw = linearGradient(in, go);
    EXPECT_EQ(dw.shape(), (Shape{4, 5}));
    float expect = 0.0f;
    for (int b = 0; b < 2; ++b)
        for (int m = 0; m < 3; ++m)
            expect += in.at({b, m, 1}) * go.at({b, m, 2});
    EXPECT_NEAR(dw.at({1, 2}), expect, 1e-5f);
}

TEST(Ops, LinearGradCheck)
{
    // Numerical gradient check of the linear op chain.
    Rng rng(6);
    Tensor in = Tensor::random(Shape{1, 2, 3}, rng);
    Tensor w = Tensor::random(Shape{3, 2}, rng);
    // loss = sum(O); dO = ones.
    Tensor d_out = Tensor::full(Shape{1, 2, 2}, 1.0f);
    Tensor dw = linearGradient(in, d_out);
    Tensor di = linearBackward(d_out, w);

    auto loss = [&](const Tensor &ii, const Tensor &ww) {
        Tensor o = linearForward(ii, ww);
        float s = 0.0f;
        for (std::int64_t i = 0; i < o.numel(); ++i)
            s += o.data()[i];
        return s;
    };

    const float eps = 1e-2f;
    {
        Tensor wp = w, wm = w;
        wp.at({1, 0}) += eps;
        wm.at({1, 0}) -= eps;
        const float num = (loss(in, wp) - loss(in, wm)) / (2 * eps);
        EXPECT_NEAR(dw.at({1, 0}), num, 1e-2f);
    }
    {
        Tensor ip = in, im = in;
        ip.at({0, 1, 2}) += eps;
        im.at({0, 1, 2}) -= eps;
        const float num = (loss(ip, w) - loss(im, w)) / (2 * eps);
        EXPECT_NEAR(di.at({0, 1, 2}), num, 1e-2f);
    }
}

TEST(Ops, BatchedMatmulMatchesManual)
{
    Rng rng(7);
    Tensor a = Tensor::random(Shape{2, 2, 3, 4}, rng);
    Tensor b = Tensor::random(Shape{2, 2, 4, 5}, rng);
    Tensor o = batchedMatmul(a, b);
    EXPECT_EQ(o.shape(), (Shape{2, 2, 3, 5}));
    float expect = 0.0f;
    for (int l = 0; l < 4; ++l)
        expect += a.at({1, 0, 2, l}) * b.at({1, 0, l, 3});
    EXPECT_NEAR(o.at({1, 0, 2, 3}), expect, 1e-5f);
}

TEST(Ops, BatchedMatmulTransposeFlags)
{
    Rng rng(8);
    Tensor a = Tensor::random(Shape{1, 3, 4}, rng);
    Tensor b = Tensor::random(Shape{1, 5, 4}, rng);
    // o = a x b^T
    Tensor o = batchedMatmul(a, b, false, true);
    EXPECT_EQ(o.shape(), (Shape{1, 3, 5}));
    float expect = 0.0f;
    for (int l = 0; l < 4; ++l)
        expect += a.at({0, 2, l}) * b.at({0, 4, l});
    EXPECT_NEAR(o.at({0, 2, 4}), expect, 1e-5f);

    // o2 = a^T x a : [4, 4]
    Tensor o2 = batchedMatmul(a, a, true, false);
    EXPECT_EQ(o2.shape(), (Shape{1, 4, 4}));
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(9);
    Tensor x = Tensor::random(Shape{3, 7}, rng);
    Tensor y = softmaxLastDim(x);
    for (int r = 0; r < 3; ++r) {
        float s = 0.0f;
        for (int c = 0; c < 7; ++c) {
            EXPECT_GT(y.at({r, c}), 0.0f);
            s += y.at({r, c});
        }
        EXPECT_NEAR(s, 1.0f, 1e-5f);
    }
}

TEST(Ops, SoftmaxBackwardGradCheck)
{
    Rng rng(10);
    Tensor x = Tensor::random(Shape{2, 5}, rng);
    Tensor gy = Tensor::random(Shape{2, 5}, rng);
    Tensor y = softmaxLastDim(x);
    Tensor gx = softmaxBackward(y, gy);

    auto loss = [&](const Tensor &xx) {
        Tensor yy = softmaxLastDim(xx);
        float s = 0.0f;
        for (std::int64_t i = 0; i < yy.numel(); ++i)
            s += yy.data()[i] * gy.data()[i];
        return s;
    };
    const float eps = 1e-2f;
    Tensor xp = x, xm = x;
    xp.at({1, 3}) += eps;
    xm.at({1, 3}) -= eps;
    const float num = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(gx.at({1, 3}), num, 1e-2f);
}

TEST(Ops, LayerNormNormalizes)
{
    Rng rng(11);
    Tensor x = Tensor::random(Shape{4, 16}, rng);
    Tensor gamma = Tensor::full(Shape{16}, 1.0f);
    Tensor beta(Shape{16});
    const auto res = layerNormForward(x, gamma, beta);
    for (int r = 0; r < 4; ++r) {
        float mu = 0.0f, var = 0.0f;
        for (int c = 0; c < 16; ++c)
            mu += res.output.at({r, c});
        mu /= 16;
        for (int c = 0; c < 16; ++c)
            var += (res.output.at({r, c}) - mu) *
                   (res.output.at({r, c}) - mu);
        var /= 16;
        EXPECT_NEAR(mu, 0.0f, 1e-4f);
        EXPECT_NEAR(var, 1.0f, 1e-2f);
    }
}

TEST(Ops, LayerNormBackwardGradCheck)
{
    Rng rng(12);
    Tensor x = Tensor::random(Shape{2, 8}, rng);
    Tensor gamma = Tensor::random(Shape{8}, rng);
    Tensor beta = Tensor::random(Shape{8}, rng);
    Tensor gy = Tensor::random(Shape{2, 8}, rng);

    const auto fwd = layerNormForward(x, gamma, beta);
    const auto grads = layerNormBackward(x, fwd, gamma, gy);

    auto loss = [&](const Tensor &xx, const Tensor &gg,
                    const Tensor &bb) {
        const auto r = layerNormForward(xx, gg, bb);
        float s = 0.0f;
        for (std::int64_t i = 0; i < r.output.numel(); ++i)
            s += r.output.data()[i] * gy.data()[i];
        return s;
    };

    const float eps = 1e-2f;
    {
        Tensor xp = x, xm = x;
        xp.at({1, 4}) += eps;
        xm.at({1, 4}) -= eps;
        const float num =
            (loss(xp, gamma, beta) - loss(xm, gamma, beta)) / (2 * eps);
        EXPECT_NEAR(grads.d_input.at({1, 4}), num, 2e-2f);
    }
    {
        Tensor gp = gamma, gm = gamma;
        gp.at({3}) += eps;
        gm.at({3}) -= eps;
        const float num =
            (loss(x, gp, beta) - loss(x, gm, beta)) / (2 * eps);
        EXPECT_NEAR(grads.d_gamma.at({3}), num, 2e-2f);
    }
    {
        Tensor bp = beta, bm = beta;
        bp.at({5}) += eps;
        bm.at({5}) -= eps;
        const float num =
            (loss(x, gamma, bp) - loss(x, gamma, bm)) / (2 * eps);
        EXPECT_NEAR(grads.d_beta.at({5}), num, 2e-2f);
    }
}

TEST(Ops, GeluAndBackward)
{
    EXPECT_NEAR(gelu(Tensor::full(Shape{1}, 0.0f)).at({0}), 0.0f, 1e-6f);
    // gelu(x) -> x for large x, -> 0 for very negative x.
    EXPECT_NEAR(gelu(Tensor::full(Shape{1}, 5.0f)).at({0}), 5.0f, 1e-3f);
    EXPECT_NEAR(gelu(Tensor::full(Shape{1}, -5.0f)).at({0}), 0.0f, 1e-3f);

    Rng rng(13);
    Tensor x = Tensor::random(Shape{10}, rng);
    Tensor gy = Tensor::full(Shape{10}, 1.0f);
    Tensor gx = geluBackward(x, gy);
    const float eps = 1e-3f;
    for (int i = 0; i < 10; ++i) {
        Tensor xp = x, xm = x;
        xp.at({i}) += eps;
        xm.at({i}) -= eps;
        const float num =
            (gelu(xp).at({i}) - gelu(xm).at({i})) / (2 * eps);
        EXPECT_NEAR(gx.at({i}), num, 1e-2f);
    }
}

TEST(Ops, ReluAndBackward)
{
    Tensor x(Shape{4});
    x.at({0}) = -1.0f;
    x.at({1}) = 2.0f;
    x.at({2}) = 0.0f;
    x.at({3}) = -0.5f;
    Tensor y = relu(x);
    EXPECT_EQ(y.at({0}), 0.0f);
    EXPECT_EQ(y.at({1}), 2.0f);
    Tensor gy = Tensor::full(Shape{4}, 3.0f);
    Tensor gx = reluBackward(x, gy);
    EXPECT_EQ(gx.at({0}), 0.0f);
    EXPECT_EQ(gx.at({1}), 3.0f);
    EXPECT_EQ(gx.at({2}), 0.0f);
}

TEST(Ops, AddTensors)
{
    Tensor a = Tensor::full(Shape{2, 2}, 1.5f);
    Tensor b = Tensor::full(Shape{2, 2}, 2.5f);
    Tensor c = addTensors(a, b);
    EXPECT_EQ(c.at({1, 1}), 4.0f);
}

} // namespace
} // namespace primepar
