/**
 * @file
 * Tests of the trace recorder / exporters and of the 2-D torus
 * topology (paper Sec. 7 discussion).
 */

#include <gtest/gtest.h>

#include "graph/transformer.hh"
#include "sim/model_sim.hh"
#include "sim/op_sim.hh"
#include "sim/trace.hh"

namespace primepar {
namespace {

TEST(Trace, RecordsAndExports)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    t.add(0, SpanKind::Compute, "fc:Forward", 0.0, 10.0);
    t.add(1, SpanKind::Ring, "W shift", 2.0, 5.0);
    t.add(0, SpanKind::AllReduce, "O all-reduce", 10.0, 14.0);
    EXPECT_EQ(t.spans().size(), 3u);
    EXPECT_DOUBLE_EQ(t.endUs(), 14.0);

    const std::string json = t.toChromeJson();
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("fc:Forward"), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);

    const std::string ascii = t.toAscii(40);
    EXPECT_NE(ascii.find("dev 0"), std::string::npos);
    EXPECT_NE(ascii.find('#'), std::string::npos);
    EXPECT_NE(ascii.find('A'), std::string::npos);

    // The closed kind vocabulary has stable names (they are the
    // Chrome-trace categories and the metrics counter suffixes).
    EXPECT_STREQ(toString(SpanKind::Compute), "compute");
    EXPECT_STREQ(toString(SpanKind::Ring), "ring");
    EXPECT_STREQ(toString(SpanKind::AllReduce), "allreduce");
    EXPECT_STREQ(toString(SpanKind::Redist), "redist");
    EXPECT_STREQ(toString(SpanKind::Checkpoint), "checkpoint");

    const std::string summary = t.summary();
    EXPECT_NE(summary.find("compute"), std::string::npos);
    EXPECT_NE(summary.find("ring"), std::string::npos);
}

TEST(Trace, SimulatorFillsTrace)
{
    const auto topo = ClusterTopology::paperCluster(4);
    const OpSpec op = makeLinearOp("fc", 8, 512, 1024, 1024);
    const OpPlan plan(op, PartitionSeq({PartitionStep::pSquare(1)}), 2);
    SimContext ctx(topo);
    Trace trace;
    ctx.trace = &trace;
    simulateOpPhase(ctx, plan, Phase::Forward);

    int computes = 0, rings = 0;
    for (const auto &s : trace.spans()) {
        if (s.kind == SpanKind::Compute)
            ++computes;
        if (s.kind == SpanKind::Ring)
            ++rings;
        EXPECT_GE(s.endUs, s.startUs);
    }
    // 4 devices x 2 steps of compute; I and W shifts for 4 devices.
    EXPECT_EQ(computes, 8);
    EXPECT_EQ(rings, 8);
}

TEST(Trace, ModelSimTraceCoversAllKinds)
{
    const auto topo = ClusterTopology::paperCluster(4);
    ModelConfig cfg = opt6p7b();
    cfg.seqLength = 256;
    const CompGraph g = buildMlpBlock(cfg, 8);
    // Megatron-ish: forces all-reduce and redistribution.
    std::vector<PartitionSeq> strat = {
        PartitionSeq({PartitionStep::byDim(1), PartitionStep::byDim(3)}),
        PartitionSeq({PartitionStep::byDim(0), PartitionStep::byDim(1)}),
        PartitionSeq({PartitionStep::byDim(2), PartitionStep::byDim(2)}),
    };
    Trace trace;
    const ModelSimulator sim(topo, g, strat);
    sim.simulate(1, &trace);
    bool has_compute = false, has_redist = false, has_ar = false;
    for (const auto &s : trace.spans()) {
        has_compute |= s.kind == SpanKind::Compute;
        has_redist |= s.kind == SpanKind::Redist;
        has_ar |= s.kind == SpanKind::AllReduce;
    }
    EXPECT_TRUE(has_compute);
    EXPECT_TRUE(has_redist);
    EXPECT_TRUE(has_ar);
}

TEST(Torus, HopDistanceUsesInterleavedPlacement)
{
    // Torus coordinates de-interleave the device-id bits (r bits at
    // even positions, c at odd) so PSquare's logical square tiles the
    // physical torus. Device 1 = (r=0,c=1); 5 = (0,3); 12 = (2,2);
    // 15 = (3,3).
    const auto torus = ClusterTopology::torus2d(4);
    EXPECT_EQ(torus.kind(), ClusterTopology::Kind::Torus2D);
    EXPECT_EQ(torus.numDevices(), 16);
    EXPECT_EQ(torus.hopDistance(0, 1), 1);
    // (0,0) to (0,3) wraps around: one hop.
    EXPECT_EQ(torus.hopDistance(0, 5), 1);
    // (0,0) to (2,2): 2 + 2 hops.
    EXPECT_EQ(torus.hopDistance(0, 12), 4);
    // (0,0) to (3,3): wraps both ways: 2 hops.
    EXPECT_EQ(torus.hopDistance(0, 15), 2);
    EXPECT_EQ(torus.hopDistance(5, 5), 0);
    // Symmetric.
    EXPECT_EQ(torus.hopDistance(12, 0), 4);
}

TEST(Torus, UniformBandwidthLatencyByHops)
{
    const auto torus = ClusterTopology::torus2d(4);
    EXPECT_DOUBLE_EQ(torus.linkBandwidth(0, 1),
                     torus.linkBandwidth(0, 12));
    EXPECT_LT(torus.linkLatency(0, 1), torus.linkLatency(0, 12));
    EXPECT_TRUE(torus.sameNode(0, 1));
    EXPECT_TRUE(torus.sameNode(0, 5));  // wraparound neighbour
    EXPECT_FALSE(torus.sameNode(0, 12));
}

TEST(Torus, PSquareRingsAreAllNeighbourHops)
{
    // On a torus matching the PSquare square, the derived ring
    // senders must all be 1-hop neighbours in at least one phase
    // direction (rows/columns/diagonals are torus-routable).
    const auto torus = ClusterTopology::torus2d(4);
    const OpSpec op = makeLinearOp("fc", 4, 64, 64, 64);
    const PartitionSeq seq({PartitionStep::pSquare(2)});
    DsiTable dsi(op, seq, 4);
    const PassComm fwd = derivePassComm(op, seq, dsi, 0);
    for (const auto &step : fwd.stepShifts) {
        for (const ShiftSet &set : step) {
            for (const Transfer &tr : set.transfers) {
                // Forward senders are (r, c+1) and (r+1, c): 1 hop.
                EXPECT_LE(torus.hopDistance(tr.receiver, tr.sender), 1)
                    << tr.receiver << " <- " << tr.sender;
            }
        }
    }
}

TEST(Torus, FasterRingsThanHierarchicalCrossNode)
{
    // The whole point of Sec. 7: a P4x4 ring step on the torus beats
    // the hierarchical cluster, whose rings cross InfiniBand.
    const auto torus = ClusterTopology::torus2d(4);
    const auto hier = ClusterTopology::paperCluster(16);
    const OpSpec op = makeLinearOp("fc", 8, 1024, 4096, 4096);
    const OpPlan plan(op, PartitionSeq({PartitionStep::pSquare(2)}), 4);

    auto stall_of = [&](const ClusterTopology &topo) {
        SimContext ctx(topo);
        SimBreakdown total;
        for (Phase ph :
             {Phase::Forward, Phase::Backward, Phase::Gradient})
            total.accumulate(simulateOpPhase(ctx, plan, ph));
        return total;
    };
    const SimBreakdown on_torus = stall_of(torus);
    const SimBreakdown on_hier = stall_of(hier);
    EXPECT_LT(on_torus.ringUs, on_hier.ringUs);
}

} // namespace
} // namespace primepar
